"""Unit tests for the five comparison managers."""

import numpy as np
import pytest

from repro.baselines import (
    GAConfig,
    GeneticManager,
    GpuBaseline,
    LinearLatencyModel,
    Mosaic,
    Odmdef,
    OmniBoost,
    block_features,
)
from repro.core import OraclePredictor
from repro.hw import GPU, orange_pi_5
from repro.mapping import gpu_only_mapping
from repro.search import MCTSConfig
from repro.sim import simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()


def wl(*names):
    return [get_model(n) for n in names]


class TestProfiling:
    def test_block_features_finite_and_fixed_width(self):
        model = get_model("alexnet")
        for block in model.blocks:
            f = block_features(block)
            assert f.shape == (5,)
            assert np.isfinite(f).all()

    def test_linear_model_orders_components(self):
        lm = LinearLatencyModel(PLATFORM).fit(
            [get_model("vgg16"), get_model("resnet50")]
        )
        heavy = get_model("vgg16").blocks[5]  # a large conv block
        gpu_t = lm.predict(heavy, 0)
        little_t = lm.predict(heavy, 2)
        assert gpu_t < little_t

    def test_predict_before_fit_raises(self):
        lm = LinearLatencyModel(PLATFORM)
        with pytest.raises(RuntimeError):
            lm.predict(get_model("alexnet").blocks[0], 0)

    def test_predict_blocks_length(self):
        lm = LinearLatencyModel(PLATFORM).fit([get_model("alexnet")])
        preds = lm.predict_blocks(get_model("alexnet"), 1)
        assert preds.shape == (8,)
        assert (preds > 0).all()


class TestGpuBaseline:
    def test_everything_on_gpu(self):
        workload = wl("alexnet", "resnet50")
        decision = GpuBaseline().plan(workload)
        assert decision.mapping.components_used() == {GPU}
        assert decision.mapping.assignments == \
            gpu_only_mapping(workload).assignments

    def test_fast_decision(self):
        decision = GpuBaseline().plan(wl("alexnet"))
        assert decision.decision_seconds < 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GpuBaseline().plan([])


class TestMosaic:
    def test_valid_mapping(self):
        workload = wl("squeezenet_v2", "resnet50", "vgg16")
        decision = Mosaic(PLATFORM).plan(workload)
        decision.mapping.validate_against(workload, 3)

    def test_slices_use_distinct_components_per_dnn(self):
        workload = wl("vgg16")
        decision = Mosaic(PLATFORM).plan(workload)
        from repro.mapping import extract_stages

        stages = extract_stages(0, decision.mapping.assignments[0])
        comps = [s.component for s in stages]
        assert len(comps) == len(set(comps))

    def test_contention_blind(self):
        """Every DNN gets the same slicing regardless of co-runners."""
        solo = Mosaic(PLATFORM).plan(wl("resnet50"))
        duo = Mosaic(PLATFORM).plan(wl("resnet50", "vgg16"))
        assert solo.mapping.assignments[0] == duo.mapping.assignments[0]

    def test_modeled_decision_second_scale(self):
        decision = Mosaic(PLATFORM).plan(wl("alexnet"))
        assert 0.1 < decision.decision_seconds < 5.0


class TestOdmdef:
    @pytest.fixture(scope="class")
    def manager(self):
        return Odmdef(PLATFORM, profiling_runs=15, seed=1)

    def test_valid_mapping(self, manager):
        workload = wl("squeezenet_v2", "resnet50", "vgg16")
        decision = manager.plan(workload)
        decision.mapping.validate_against(workload, 3)

    def test_load_balances_across_components(self, manager):
        workload = wl("vgg16", "resnet50", "inception_v4", "alexnet")
        decision = manager.plan(workload)
        assert len(decision.mapping.components_used()) >= 2

    def test_beats_pure_baseline(self, manager):
        workload = wl("squeezenet_v2", "resnet50", "vgg16")
        ours = simulate(workload, manager.plan(workload).mapping, PLATFORM)
        base = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        assert ours.average_throughput > base.average_throughput


class TestGeneticManager:
    def test_valid_mapping_and_modeled_time(self):
        workload = wl("alexnet", "squeezenet_v2")
        cfg = GAConfig(population=8, generations=3, seed=0)
        manager = GeneticManager(PLATFORM, cfg)
        decision = manager.plan(workload)
        decision.mapping.validate_against(workload, 3)
        # 8 x (3+1) evaluations x 2 s measurement window.
        assert decision.decision_seconds == pytest.approx(8 * 4 * 2.0)

    def test_evolution_beats_random_population(self):
        workload = wl("squeezenet_v2", "resnet50", "vgg16")
        short = GeneticManager(PLATFORM, GAConfig(population=10,
                                                  generations=0, seed=5))
        long = GeneticManager(PLATFORM, GAConfig(population=10,
                                                 generations=8, seed=5))
        t_short = simulate(workload, short.plan(workload).mapping,
                           PLATFORM).average_throughput
        t_long = simulate(workload, long.plan(workload).mapping,
                          PLATFORM).average_throughput
        assert t_long >= t_short

    def test_ga_is_slowest_manager(self):
        workload = wl("alexnet")
        ga = GeneticManager(PLATFORM, GAConfig(population=8, generations=3))
        others = [GpuBaseline(), Mosaic(PLATFORM)]
        ga_time = ga.plan(workload).decision_seconds
        for mgr in others:
            assert ga_time > mgr.plan(workload).decision_seconds


class TestOmniBoost:
    def test_valid_mapping(self):
        workload = wl("squeezenet_v2", "resnet50")
        manager = OmniBoost(PLATFORM, OraclePredictor(PLATFORM),
                            MCTSConfig(iterations=20, rollouts_per_leaf=3))
        decision = manager.plan(workload)
        decision.mapping.validate_against(workload, 3)

    def test_maximises_average_throughput(self):
        workload = wl("squeezenet_v2", "inception_v4", "resnet50")
        manager = OmniBoost(PLATFORM, OraclePredictor(PLATFORM),
                            MCTSConfig(iterations=40, rollouts_per_leaf=4))
        result = simulate(workload, manager.plan(workload).mapping, PLATFORM)
        base = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        assert result.average_throughput > 1.5 * base.average_throughput

    def test_ignores_priorities(self):
        workload = wl("squeezenet_v2", "resnet50")
        manager = OmniBoost(PLATFORM, OraclePredictor(PLATFORM),
                            MCTSConfig(iterations=10, rollouts_per_leaf=2))
        d1 = manager.plan(workload, np.array([0.9, 0.1]))
        manager2 = OmniBoost(PLATFORM, OraclePredictor(PLATFORM),
                             MCTSConfig(iterations=10, rollouts_per_leaf=2))
        d2 = manager2.plan(workload, np.array([0.1, 0.9]))
        assert d1.mapping.assignments == d2.mapping.assignments
