"""Unit tests for the layer IR and derived cost quantities."""

import pytest

from repro.zoo.layers import (
    BYTES_PER_ELEMENT,
    Activation,
    BlockSpec,
    LayerSpec,
    LayerType,
    ModelSpec,
)


def make_conv(index=0, ifm=(3, 8, 8), out_c=4, k=3, stride=1, pad=1,
              act=Activation.RELU):
    oh = (ifm[1] + 2 * pad - k) // stride + 1
    return LayerSpec(
        index=index, op_type=LayerType.CONV, ifm=ifm, ofm=(out_c, oh, oh),
        weight_shape=(out_c, ifm[0], k, k), biases=out_c, activation=act,
        pad=(pad, pad), stride=(stride, stride),
    )


class TestLayerSpecCosts:
    def test_conv_macs_formula(self):
        layer = make_conv(ifm=(3, 8, 8), out_c=4, k=3, stride=1, pad=1)
        # k*k*cin*cout*oh*ow = 9*3*4*8*8
        assert layer.macs == 9 * 3 * 4 * 8 * 8

    def test_conv_params(self):
        layer = make_conv(ifm=(3, 8, 8), out_c=4, k=3)
        assert layer.params == 4 * 3 * 9 + 4

    def test_dwconv_macs(self):
        layer = LayerSpec(0, LayerType.DWCONV, (8, 10, 10), (8, 10, 10),
                          (8, 1, 3, 3), 8, Activation.RELU, (1, 1), (1, 1),
                          groups=8)
        assert layer.macs == 9 * 8 * 10 * 10

    def test_group_conv_macs_scale_with_group_width(self):
        full = LayerSpec(0, LayerType.CONV, (32, 8, 8), (32, 8, 8),
                         (32, 32, 3, 3), 0, Activation.RELU, (1, 1), (1, 1))
        grouped = LayerSpec(0, LayerType.GROUP_CONV, (32, 8, 8), (32, 8, 8),
                            (32, 8, 3, 3), 0, Activation.RELU, (1, 1), (1, 1),
                            groups=4)
        assert grouped.macs * 4 == full.macs

    def test_fc_macs(self):
        layer = LayerSpec(0, LayerType.FC, (256, 1, 1), (10, 1, 1),
                          (10, 256, 1, 1), 10, Activation.NONE, (0, 0), (1, 1))
        assert layer.macs == 2560
        assert layer.params == 2570

    def test_pool_has_no_macs_but_elem_ops(self):
        layer = LayerSpec(0, LayerType.MAXPOOL, (8, 8, 8), (8, 4, 4),
                          (0, 0, 2, 2), 0, Activation.NONE, (0, 0), (2, 2))
        assert layer.macs == 0
        assert layer.elem_ops == 4 * 8 * 4 * 4

    def test_add_elem_ops(self):
        layer = LayerSpec(0, LayerType.ADD, (8, 4, 4), (8, 4, 4),
                          (0, 0, 0, 0), 0, Activation.NONE, (0, 0), (1, 1))
        assert layer.elem_ops == 8 * 4 * 4

    def test_activation_adds_elem_ops(self):
        no_act = LayerSpec(0, LayerType.ADD, (8, 4, 4), (8, 4, 4),
                           (0, 0, 0, 0), 0, Activation.NONE, (0, 0), (1, 1))
        with_act = LayerSpec(0, LayerType.ADD, (8, 4, 4), (8, 4, 4),
                             (0, 0, 0, 0), 0, Activation.RELU, (0, 0), (1, 1))
        assert with_act.elem_ops == no_act.elem_ops + 8 * 4 * 4

    def test_byte_sizes(self):
        layer = make_conv(ifm=(3, 8, 8), out_c=4)
        assert layer.input_bytes == 3 * 8 * 8 * BYTES_PER_ELEMENT
        assert layer.output_bytes == 4 * 8 * 8 * BYTES_PER_ELEMENT
        assert layer.weight_bytes == layer.params * BYTES_PER_ELEMENT

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            LayerSpec(0, 99, (1, 1, 1), (1, 1, 1), (0, 0, 0, 0), 0,
                      Activation.NONE, (0, 0), (1, 1))

    def test_repr_mentions_type(self):
        assert "conv" in repr(make_conv())


class TestBlockAndModel:
    def _model(self):
        l1 = make_conv(0, ifm=(3, 8, 8), out_c=4)
        l2 = make_conv(1, ifm=(4, 8, 8), out_c=8)
        return ModelSpec("toy", (3, 8, 8),
                         [BlockSpec("b1", [l1]), BlockSpec("b2", [l2])])

    def test_block_aggregates(self):
        m = self._model()
        b = m.blocks[0]
        assert b.macs == b.layers[0].macs
        assert b.input_bytes == b.layers[0].input_bytes
        assert b.output_bytes == b.layers[-1].output_bytes

    def test_model_totals(self):
        m = self._model()
        assert m.macs == sum(b.macs for b in m.blocks)
        assert m.num_blocks == 2
        assert m.num_layers == 2
        assert len(m.layers()) == 2

    def test_layers_in_execution_order(self):
        m = self._model()
        indices = [l.index for l in m.layers()]
        assert indices == sorted(indices)
