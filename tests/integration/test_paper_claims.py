"""Integration tests for the paper's structural claims (oracle predictor).

These pin the *shape* results the reproduction must preserve, using the
simulator-oracle predictor so they are independent of estimator training
noise (the estimator-backed path is exercised by the experiment suite).
"""

import numpy as np
import pytest

from repro.baselines import GpuBaseline, Mosaic, OmniBoost
from repro.core import OraclePredictor, RankMap, RankMapConfig, static_priorities
from repro.hw import orange_pi_5
from repro.metrics import STARVATION_EPSILON
from repro.search import MCTSConfig
from repro.sim import arrival, run_dynamic_scenario, simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()
MCTS = MCTSConfig(iterations=60, rollouts_per_leaf=4)
HEAVY_MIX = ("squeezenet_v2", "inception_v4", "resnet50", "vgg16")


def wl(names):
    return [get_model(n) for n in names]


@pytest.fixture(scope="module")
def oracle():
    return OraclePredictor(PLATFORM)


@pytest.fixture(scope="module")
def heavy_results(oracle):
    workload = wl(HEAVY_MIX)
    prio = static_priorities(4, critical_index=1)
    out = {}
    managers = {
        "baseline": GpuBaseline(),
        "mosaic": Mosaic(PLATFORM),
        "omniboost": OmniBoost(PLATFORM, oracle, MCTS),
        "rankmap_s": RankMap(PLATFORM, oracle,
                             RankMapConfig(mode="static", mcts=MCTS)),
        "rankmap_d": RankMap(PLATFORM, oracle,
                             RankMapConfig(mode="dynamic", mcts=MCTS)),
    }
    for name, manager in managers.items():
        decision = manager.plan(workload, prio)
        out[name] = simulate(workload, decision.mapping, PLATFORM)
    return out


class TestThroughputClaims:
    def test_rankmap_d_beats_baseline_and_slicers(self, heavy_results):
        """Fig. 5: RankMap_D ahead of Baseline and MOSAIC on T."""
        t = {k: r.average_throughput for k, r in heavy_results.items()}
        assert t["rankmap_d"] > 1.5 * t["baseline"]
        assert t["rankmap_d"] > t["mosaic"]

    def test_rankmap_never_starves_where_omniboost_does(self, heavy_results):
        """Figs. 7: the no-starvation guarantee vs OmniBoost's greed."""
        assert (heavy_results["rankmap_s"].potentials
                >= STARVATION_EPSILON).all()
        assert (heavy_results["rankmap_d"].potentials
                >= STARVATION_EPSILON).all()
        assert heavy_results["omniboost"].potentials.min() < 0.05

    def test_rankmap_s_critical_dnn_dominates_baseline(self, heavy_results):
        """Fig. 6: the critical DNN's P far above the baseline's."""
        crit = 1  # inception_v4
        assert (heavy_results["rankmap_s"].potentials[crit]
                > 1.5 * heavy_results["baseline"].potentials[crit])

    def test_rankmap_s_critical_dnn_beats_dynamic_mode(self, heavy_results):
        """Fig. 6: static mode serves the user's critical DNN better than
        dynamic mode (the paper's x2.2 at 4 DNNs; we require >=)."""
        crit = 1  # inception_v4
        assert (heavy_results["rankmap_s"].potentials[crit]
                >= heavy_results["rankmap_d"].potentials[crit] * 0.95)


class TestPriorityCorrelation:
    def test_dynamic_priorities_track_potentials(self, oracle):
        """Fig. 9: positive P-p Pearson correlation for RankMap_D."""
        from repro.core.priorities import dynamic_priorities
        from repro.metrics import pearson_r

        rng = np.random.default_rng(3)
        manager = RankMap(PLATFORM, oracle,
                          RankMapConfig(mode="dynamic", mcts=MCTS))
        corrs = []
        from repro.zoo import MODEL_POOL

        for _ in range(3):
            names = rng.choice(MODEL_POOL, size=3, replace=False)
            workload = wl(names)
            decision = manager.plan(workload)
            result = simulate(workload, decision.mapping, PLATFORM)
            corrs.append(pearson_r(result.potentials,
                                   dynamic_priorities(workload)))
        assert np.mean(corrs) > 0.2


def _instant(manager):
    """Zero the decision gap: these tests probe mapping quality, and the
    oracle predictor's modeled latency (full board measurements) would
    otherwise eat the 150 s window before the horizon."""
    from repro.sim import MappingDecision

    def planner(workload, priorities):
        decision = manager.plan(workload, priorities)
        return MappingDecision(decision.mapping, 0.0)

    return planner


class TestDynamicScenario:
    def test_fig8_rankmap_keeps_everyone_alive(self, oracle):
        arrivals = [
            arrival(0.0, get_model("inception_resnet_v1")),
            arrival(150.0, get_model("alexnet")),
            arrival(300.0, get_model("squeezenet")),
            arrival(450.0, get_model("resnet50")),
        ]
        manager = RankMap(PLATFORM, oracle,
                          RankMapConfig(mode="dynamic", mcts=MCTS))
        timeline = run_dynamic_scenario(arrivals, _instant(manager),
                                        PLATFORM, 600.0)
        final = timeline.final_potentials()
        assert len(final) == 4
        assert all(p >= STARVATION_EPSILON for p in final.values()), final

    def test_fig8_omniboost_sacrifices_a_heavy_dnn(self, oracle):
        arrivals = [
            arrival(0.0, get_model("inception_resnet_v1")),
            arrival(150.0, get_model("alexnet")),
            arrival(300.0, get_model("squeezenet")),
            arrival(450.0, get_model("resnet50")),
        ]
        manager = OmniBoost(PLATFORM, oracle, MCTS)
        timeline = run_dynamic_scenario(arrivals, _instant(manager),
                                        PLATFORM, 600.0)
        final = timeline.final_potentials()
        heavy = [final["inception_resnet_v1"], final["resnet50"]]
        assert min(heavy) < 0.05


class TestRuntimeOrdering:
    def test_modeled_decision_latencies(self):
        """Sec. V-D: baseline fastest, GA slowest, RankMap in between.

        The deployed RankMap scores candidates with the on-device estimator
        (~40 ms per forward pass), so an estimator-backed instance models
        the paper's ~30 s decisions; the GA pays a full measurement window
        per chromosome.
        """
        from repro.baselines import GAConfig, GeneticManager
        from repro.core import EstimatorPredictor
        from repro.estimator import EstimatorConfig, ThroughputEstimator
        from repro.vqvae import EmbeddingCache, LayerVQVAE

        workload = wl(("alexnet", "squeezenet_v2"))
        rng = np.random.default_rng(0)
        predictor = EstimatorPredictor(
            ThroughputEstimator(rng, EstimatorConfig()),
            EmbeddingCache(LayerVQVAE(np.random.default_rng(1))),
        )
        base_t = GpuBaseline().plan(workload).decision_seconds
        mosaic_t = Mosaic(PLATFORM).plan(workload).decision_seconds
        rankmap_t = RankMap(
            PLATFORM, predictor, RankMapConfig(mode="dynamic", mcts=MCTS)
        ).plan(workload).decision_seconds
        ga_t = GeneticManager(
            PLATFORM, GAConfig(population=10, generations=8)
        ).plan(workload).decision_seconds
        assert base_t < mosaic_t < rankmap_t < ga_t
