"""Integration tests: every experiment runs end-to-end on the tiny preset.

These verify the full pipeline (zoo -> hw -> sim -> vqvae -> estimator ->
search -> managers -> experiment harness) wires together; statistical
fidelity is covered by the fast-preset runs recorded in EXPERIMENTS.md and
by the sharper targeted tests elsewhere in the suite.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, ExperimentContext, run_experiment


@pytest.fixture(scope="module")
def ctx(tmp_path_factory):
    results = tmp_path_factory.mktemp("results")
    return ExperimentContext(preset="tiny", results_dir=results,
                             use_artifact_cache=False)


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_runs_and_saves(ctx, name):
    result = run_experiment(name, ctx)
    assert result.rows, name
    assert result.text
    assert (ctx.results_dir / f"{result.experiment}.csv").exists()
    assert (ctx.results_dir / f"{result.experiment}.txt").exists()


def test_unknown_experiment_rejected(ctx):
    with pytest.raises(KeyError, match="available"):
        run_experiment("fig99", ctx)


def test_mix_study_memoised(ctx):
    from repro.experiments.mix_study import run_mix_study

    first = run_mix_study(ctx)
    second = run_mix_study(ctx)
    assert first is second


def test_artifact_cache_roundtrip(tmp_path):
    ctx1 = ExperimentContext(preset="tiny", results_dir=tmp_path,
                             use_artifact_cache=True)
    a1 = ctx1.artifacts
    assert (tmp_path / "artifacts_tiny_orange_pi_5.npz").exists()

    ctx2 = ExperimentContext(preset="tiny", results_dir=tmp_path,
                             use_artifact_cache=True)
    a2 = ctx2.artifacts
    # Loaded estimator must produce identical predictions.
    q = np.zeros((1, a1.estimator.config.max_dnns,
                  a1.estimator.config.max_layers,
                  a1.estimator.config.width), np.float32)
    np.testing.assert_allclose(a1.estimator.predict_log_rates(q),
                               a2.estimator.predict_log_rates(q),
                               rtol=1e-5)
    assert a2.estimator_val_l2 == pytest.approx(a1.estimator_val_l2)


def test_cli_main_runs(tmp_path, capsys):
    from repro.experiments.__main__ import main

    code = main(["table1", "--preset", "tiny",
                 "--results", str(tmp_path), "--no-cache"])
    assert code == 0
    out = capsys.readouterr().out
    assert "table1" in out
    assert "priority_aware" in out
