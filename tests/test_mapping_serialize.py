"""Tests for deployment-record serialization (repro.mapping.serialize)."""

import json

import numpy as np
import pytest

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.mapping import (
    DeploymentRecord,
    gpu_only_mapping,
    load_deployment,
    random_partition_mapping,
    save_deployment,
)
from repro.search import MCTSConfig
from repro.sim import simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()


def wl(*names):
    return [get_model(n) for n in names]


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        workload = wl("alexnet", "resnet50")
        rng = np.random.default_rng(3)
        mapping = random_partition_mapping(workload, 3, rng)
        record = DeploymentRecord.from_plan(
            "orange_pi_5", workload, mapping, priorities=[0.7, 0.3])
        back = DeploymentRecord.from_json(record.to_json())
        assert back == record

    def test_restore_rebuilds_identical_simulation(self):
        workload = wl("alexnet", "squeezenet")
        rng = np.random.default_rng(5)
        mapping = random_partition_mapping(workload, 3, rng)
        record = DeploymentRecord.from_plan("orange_pi_5", workload, mapping)
        restored_wl, restored_map = record.restore(PLATFORM.num_components)
        np.testing.assert_array_equal(
            simulate(workload, mapping, PLATFORM).rates,
            simulate(restored_wl, restored_map, PLATFORM).rates)

    def test_file_round_trip(self, tmp_path):
        workload = wl("mobilenet",)
        record = DeploymentRecord.from_plan(
            "orange_pi_5", workload, gpu_only_mapping(workload))
        path = tmp_path / "plan.json"
        save_deployment(path, record)
        assert load_deployment(path) == record
        # The on-disk form is plain JSON a runtime in any language can read.
        payload = json.loads(path.read_text())
        assert payload["workload"] == ["mobilenet"]

    def test_plan_snapshot_from_manager(self, tmp_path):
        workload = wl("alexnet", "squeezenet")
        manager = RankMap(
            PLATFORM, OraclePredictor(PLATFORM),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=20,
                                          rollouts_per_leaf=2)))
        decision = manager.plan(workload)
        record = DeploymentRecord.from_plan(
            PLATFORM.name, workload, decision.mapping,
            priorities=manager.last_priorities)
        path = tmp_path / "deployed.json"
        save_deployment(path, record)
        _, mapping = load_deployment(path).restore(PLATFORM.num_components)
        assert mapping == decision.mapping


class TestValidation:
    def test_misaligned_lengths_rejected(self):
        with pytest.raises(ValueError, match="align"):
            DeploymentRecord(platform="x", workload=("alexnet",),
                             assignments=((0,), (1,)))

    def test_priorities_length_checked(self):
        with pytest.raises(ValueError, match="priorities"):
            DeploymentRecord(platform="x", workload=("alexnet",),
                             assignments=((0, 0, 0, 0, 0, 0, 0, 0, 0),),
                             priorities=(0.5, 0.5))

    def test_unknown_model_fails_on_restore(self):
        record = DeploymentRecord(platform="orange_pi_5",
                                  workload=("made_up_net",),
                                  assignments=((0, 0),))
        with pytest.raises(KeyError, match="unknown model"):
            record.restore(3)

    def test_stale_block_structure_fails_on_restore(self):
        # One block too few for alexnet: zoo drift must be caught.
        workload = wl("alexnet",)
        good = gpu_only_mapping(workload).assignments[0]
        record = DeploymentRecord(platform="orange_pi_5",
                                  workload=("alexnet",),
                                  assignments=(good[:-1],))
        with pytest.raises(ValueError):
            record.restore(3)

    def test_component_out_of_range_fails_on_restore(self):
        workload = wl("alexnet",)
        blocks = len(gpu_only_mapping(workload).assignments[0])
        record = DeploymentRecord(platform="orange_pi_5",
                                  workload=("alexnet",),
                                  assignments=(tuple([5] * blocks),))
        with pytest.raises(ValueError):
            record.restore(3)

    def test_version_gate(self):
        payload = json.loads(DeploymentRecord(
            platform="x", workload=(), assignments=()).to_json())
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            DeploymentRecord.from_json(json.dumps(payload))

    def test_from_plan_requires_matching_mapping(self):
        workload = wl("alexnet", "squeezenet")
        solo = gpu_only_mapping(workload[:1])
        with pytest.raises(ValueError, match="cover"):
            DeploymentRecord.from_plan("orange_pi_5", workload, solo)
