"""Tests for the canonical-assignment-keyed EvaluationCache and for the
batched+cached search path's equivalence with the scalar path."""

import numpy as np
import pytest

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.mapping import Mapping, gpu_only_mapping, uniform_block_mapping
from repro.search import MCTSConfig
from repro.search.mcts import MCTS
from repro.sim import EvaluationCache, simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()


def wl(*names):
    return [get_model(n) for n in names]


def mappings_for(workload, n, seed=0):
    rng = np.random.default_rng(seed)
    return [uniform_block_mapping(workload, PLATFORM.num_components, rng)
            for _ in range(n)]


class TestEvaluationCache:
    def test_matches_simulator(self):
        workload = wl("alexnet", "squeezenet_v2")
        cache = EvaluationCache(PLATFORM)
        for mapping in mappings_for(workload, 4):
            got = cache.simulate_one(workload, mapping)
            want = simulate(workload, mapping, PLATFORM)
            np.testing.assert_allclose(got.rates, want.rates)

    def test_hits_and_misses_counted(self):
        workload = wl("alexnet", "mobilenet")
        maps = mappings_for(workload, 3)
        cache = EvaluationCache(PLATFORM)
        cache.simulate(workload, maps)
        assert (cache.hits, cache.misses) == (0, 3)
        cache.simulate(workload, maps[:2])
        assert (cache.hits, cache.misses) == (2, 3)
        assert cache.hit_rate == pytest.approx(2 / 5)

    def test_key_canonical_across_instances(self):
        """Two Mapping objects with equal assignments share one entry."""
        workload = wl("alexnet", "mobilenet")
        mapping = gpu_only_mapping(workload)
        clone = Mapping.from_lists([list(a) for a in mapping.assignments])
        assert clone is not mapping
        cache = EvaluationCache(PLATFORM)
        first = cache.simulate_one(workload, mapping)
        second = cache.simulate_one(workload, clone)
        assert second is first
        assert len(cache) == 1 and cache.hits == 1

    def test_workload_order_significant(self):
        a, b = wl("alexnet", "mobilenet")
        key_fwd = EvaluationCache.key([a, b], gpu_only_mapping([a, b]))
        key_rev = EvaluationCache.key([b, a], gpu_only_mapping([b, a]))
        assert key_fwd != key_rev

    def test_duplicates_in_one_call_solved_once(self):
        workload = wl("alexnet", "mobilenet")
        mapping = gpu_only_mapping(workload)
        cache = EvaluationCache(PLATFORM)
        results = cache.simulate(workload, [mapping, mapping, mapping])
        assert len(cache) == 1
        assert results[0] is results[1] is results[2]

    def test_lru_eviction(self):
        workload = wl("alexnet", "mobilenet")
        m1, m2, m3 = mappings_for(workload, 3)
        cache = EvaluationCache(PLATFORM, maxsize=2)
        cache.simulate(workload, [m1, m2])
        cache.simulate_one(workload, m1)      # refresh m1; m2 now oldest
        cache.simulate_one(workload, m3)      # evicts m2
        assert len(cache) == 2
        hits = cache.hits
        cache.simulate_one(workload, m2)      # miss: was evicted
        assert cache.hits == hits and cache.misses == 4

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            EvaluationCache(PLATFORM, maxsize=0)

    def test_backend_validated_and_in_key(self):
        """The solver backend is part of the canonical key, so entries
        solved on one backend can never answer for the other."""
        with pytest.raises(ValueError, match="unknown solver backend"):
            EvaluationCache(PLATFORM, backend="fortran")
        workload = wl("alexnet", "mobilenet")
        mapping = gpu_only_mapping(workload)
        numpy_key = EvaluationCache.key(workload, mapping)
        assert numpy_key == EvaluationCache.key(workload, mapping, "numpy")
        assert numpy_key != EvaluationCache.key(workload, mapping,
                                                "compiled")

    def test_backend_instances_do_not_share_entries(self):
        workload = wl("alexnet", "mobilenet")
        mapping = gpu_only_mapping(workload)
        cache = EvaluationCache(PLATFORM, backend="numpy")
        cache.simulate_one(workload, mapping)
        assert EvaluationCache.key(workload, mapping, "numpy") \
            in cache._store
        assert EvaluationCache.key(workload, mapping, "compiled") \
            not in cache._store

    def test_clear(self):
        workload = wl("alexnet",)
        cache = EvaluationCache(PLATFORM)
        cache.simulate_one(workload, gpu_only_mapping(workload))
        cache.clear()
        assert len(cache) == 0


class TestCachePersistence:
    def _primed_cache(self, workload, n=4):
        cache = EvaluationCache(PLATFORM)
        cache.simulate(workload, mappings_for(workload, n))
        return cache

    def test_save_load_round_trip(self, tmp_path):
        workload = wl("alexnet", "mobilenet")
        maps = mappings_for(workload, 4)
        cache = EvaluationCache(PLATFORM)
        originals = cache.simulate(workload, maps)
        path = tmp_path / "cache.pkl"
        assert cache.save(path) == 4

        loaded = EvaluationCache.load(path, PLATFORM)
        assert len(loaded) == 4
        results = loaded.simulate(workload, maps)
        assert loaded.misses == 0 and loaded.hits == 4
        for got, want in zip(results, originals):
            np.testing.assert_array_equal(got.rates, want.rates)

    def test_load_refuses_foreign_platform(self, tmp_path):
        from repro.hw import jetson_class

        workload = wl("alexnet",)
        cache = self._primed_cache(workload)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        with pytest.raises(ValueError, match="refusing to load"):
            EvaluationCache.load(path, jetson_class())

    def test_load_refuses_unknown_version(self, tmp_path):
        import pickle

        workload = wl("alexnet",)
        cache = self._primed_cache(workload)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = 999
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            EvaluationCache.load(path, PLATFORM)

    def test_load_refuses_pre_backend_v1_files(self, tmp_path):
        """v1 caches predate backend-tagged keys; loading one would alias
        numpy and compiled entries together, so it must refuse (the
        runner then downgrades to a cold start)."""
        import pickle

        workload = wl("alexnet",)
        cache = self._primed_cache(workload)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = 1
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            EvaluationCache.load(path, PLATFORM)

    def test_load_respects_maxsize(self, tmp_path):
        workload = wl("alexnet", "mobilenet")
        cache = self._primed_cache(workload, n=6)
        path = tmp_path / "cache.pkl"
        cache.save(path)
        loaded = EvaluationCache.load(path, PLATFORM, maxsize=3)
        assert len(loaded) == 3

    def test_fingerprint_stable_across_rebuilds(self):
        from repro.sim import platform_fingerprint

        assert platform_fingerprint(orange_pi_5()) \
            == platform_fingerprint(orange_pi_5())

    def test_fingerprint_tracks_parameters(self):
        import dataclasses

        from repro.sim import platform_fingerprint

        tweaked = dataclasses.replace(
            PLATFORM,
            link=dataclasses.replace(PLATFORM.link, latency_s=12.5))
        assert platform_fingerprint(tweaked) \
            != platform_fingerprint(PLATFORM)

    def test_reloaded_cache_warms_first_repeated_plan(self, tmp_path):
        """Acceptance: a persisted cache answers the first repeated plan
        with hit_rate > 0 in a fresh cache instance."""
        workload = wl("alexnet", "squeezenet_v2")
        cache = EvaluationCache(PLATFORM)
        manager = RankMap(
            PLATFORM, OraclePredictor(PLATFORM, cache=cache),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=10,
                                          rollouts_per_leaf=2)))
        first = manager.plan(workload)
        path = tmp_path / "cache.pkl"
        cache.save(path)

        fresh = EvaluationCache.load(path, PLATFORM)
        manager2 = RankMap(
            PLATFORM, OraclePredictor(PLATFORM, cache=fresh),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=10,
                                          rollouts_per_leaf=2)))
        second = manager2.plan(workload)
        assert fresh.hit_rate > 0
        assert second.mapping == first.mapping


class TestBatchedCachedSearchEquivalence:
    """Acceptance: the batched+cached MCTS plan produces identical
    best_reward (same seed) to the scalar simulate path."""

    def _run_search(self, workload, evaluator, seed=3):
        cfg = MCTSConfig(iterations=30, rollouts_per_leaf=3, seed=seed)
        search = MCTS(workload, PLATFORM.num_components, evaluator, cfg)
        return search.search()

    def test_best_reward_identical_to_scalar_path(self):
        workload = wl("alexnet", "squeezenet_v2", "resnet50")
        priorities = np.full(len(workload), 1 / len(workload))

        def scalar_evaluator(mappings):
            return np.array([
                simulate(workload, m, PLATFORM).rates @ priorities
                for m in mappings
            ])

        oracle = OraclePredictor(PLATFORM)  # batched + cached

        def cached_evaluator(mappings):
            return oracle.predict(workload, mappings) @ priorities

        best_scalar, stats_scalar = self._run_search(workload,
                                                     scalar_evaluator)
        best_cached, stats_cached = self._run_search(workload,
                                                     cached_evaluator)
        assert stats_cached.best_reward == stats_scalar.best_reward
        assert best_cached == best_scalar
        assert stats_cached.evaluations == stats_scalar.evaluations

    def test_repeated_plan_hits_cache_and_is_deterministic(self):
        """Acceptance: cache hit-rate > 0 across repeated plans."""
        workload = wl("alexnet", "squeezenet_v2", "resnet50")
        cache = EvaluationCache(PLATFORM)
        manager = RankMap(
            PLATFORM, OraclePredictor(PLATFORM, cache=cache),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=20,
                                          rollouts_per_leaf=3)),
        )
        first = manager.plan(workload)
        first_reward = manager.last_stats.best_reward
        assert cache.hits == 0 or cache.hit_rate < 1.0
        second = manager.plan(workload)
        assert cache.hits > 0
        assert cache.hit_rate > 0
        assert second.mapping == first.mapping
        assert manager.last_stats.best_reward == first_reward

    def test_predictor_rejects_foreign_cache(self):
        from repro.hw import jetson_class

        with pytest.raises(ValueError):
            OraclePredictor(PLATFORM, cache=EvaluationCache(jetson_class()))
