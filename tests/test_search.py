"""Unit tests for the reward function and MCTS."""

import numpy as np
import pytest

from repro.hw import orange_pi_5
from repro.mapping import Mapping
from repro.search import (
    DISQUALIFIED,
    MCTS,
    MCTSConfig,
    RewardConfig,
    mapping_reward,
    random_search,
    thresholds_for,
)
from repro.zoo import get_model

PLATFORM = orange_pi_5()


class TestRewardConfig:
    def test_defaults_valid(self):
        cfg = RewardConfig()
        assert cfg.kind == "floor"
        assert cfg.mode == "relative"

    @pytest.mark.parametrize("kwargs", [
        {"kind": "nope"}, {"mode": "nope"}, {"threshold": -1},
        {"priority_gain": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RewardConfig(**kwargs)


class TestThresholds:
    def test_relative_scales_with_ideal(self):
        wl = [get_model("squeezenet_v2"), get_model("vgg16")]
        cfg = RewardConfig(kind="weighted", threshold=0.1)
        th = thresholds_for(wl, PLATFORM, cfg)
        ideals = [PLATFORM.ideal_throughput(m) for m in wl]
        np.testing.assert_allclose(th, 0.1 * np.array(ideals))

    def test_absolute_flat(self):
        wl = [get_model("squeezenet_v2"), get_model("vgg16")]
        cfg = RewardConfig(kind="weighted", mode="absolute", threshold=3.0)
        np.testing.assert_allclose(thresholds_for(wl, PLATFORM, cfg),
                                   [3.0, 3.0])

    def test_floor_raises_threshold_with_priority(self):
        wl = [get_model("squeezenet_v2"), get_model("vgg16")]
        cfg = RewardConfig(kind="floor", threshold=0.04, priority_gain=0.5)
        p = np.array([0.8, 0.2])
        th = thresholds_for(wl, PLATFORM, cfg, p)
        ideals = np.array([PLATFORM.ideal_throughput(m) for m in wl])
        np.testing.assert_allclose(th, (0.04 + 0.5 * p) * ideals)
        # Higher priority -> higher relative floor.
        assert th[0] / ideals[0] > th[1] / ideals[1]


class TestMappingReward:
    def test_weighted_sum(self):
        r = mapping_reward(np.array([10.0, 2.0]), np.array([0.3, 0.7]),
                           np.zeros(2), kind="weighted")
        assert r == pytest.approx(10 * 0.3 + 2 * 0.7)

    def test_weighted_with_ideals_uses_potentials(self):
        r = mapping_reward(np.array([10.0, 2.0]), np.array([0.5, 0.5]),
                           np.zeros(2), ideals=np.array([20.0, 4.0]),
                           kind="weighted")
        assert r == pytest.approx(0.5 * 0.5 + 0.5 * 0.5)

    def test_floor_kind_returns_mean_rate(self):
        r = mapping_reward(np.array([10.0, 2.0]), np.array([0.9, 0.1]),
                           np.zeros(2), kind="floor")
        assert r == pytest.approx(6.0)

    def test_disqualification(self):
        r = mapping_reward(np.array([10.0, 2.0]), np.array([0.5, 0.5]),
                           np.array([0.0, 3.0]))
        assert r == DISQUALIFIED

    def test_paper_fig4_example(self):
        """Fig. 4: th=3, p=(0.6,0.1,0.2,0.1); mapping 1 has a DNN below th
        and is disqualified, mapping 2 scores the weighted sum."""
        p = np.array([0.6, 0.1, 0.2, 0.1])
        th = np.full(4, 3.0)
        m1 = mapping_reward(np.array([6.0, 9.0, 2.0, 8.0]), p, th,
                            kind="weighted")
        m2 = mapping_reward(np.array([5.0, 7.0, 4.0, 7.0]), p, th,
                            kind="weighted")
        assert m1 == DISQUALIFIED
        assert m2 == pytest.approx(5 * 0.6 + 7 * 0.1 + 4 * 0.2 + 7 * 0.1)
        assert m2 == pytest.approx(5.2)  # the paper's number

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mapping_reward(np.zeros(2), np.zeros(3), np.zeros(2))


def _block_sum_evaluator(workload):
    """Deterministic toy objective: reward = count of blocks on component 1."""

    def evaluate(mappings):
        return np.array([
            sum(sum(1 for c in a if c == 1) for a in m.assignments)
            for m in mappings
        ], dtype=float)

    return evaluate


class TestMCTS:
    def _workload(self):
        return [get_model("alexnet"), get_model("squeezenet_v2")]

    def test_search_returns_valid_mapping(self):
        wl = self._workload()
        mcts = MCTS(wl, 3, _block_sum_evaluator(wl),
                    MCTSConfig(iterations=30, rollouts_per_leaf=2))
        mapping, stats = mcts.search()
        mapping.validate_against(wl, 3)
        assert stats.evaluations == 60
        assert stats.tree_nodes > 1

    def test_search_improves_over_random_start(self):
        """On the toy objective MCTS must find mappings dominated by
        component 1 (max reward = total blocks)."""
        wl = self._workload()
        total_blocks = sum(m.num_blocks for m in wl)
        mcts = MCTS(wl, 3, _block_sum_evaluator(wl),
                    MCTSConfig(iterations=200, rollouts_per_leaf=4, seed=1))
        _, stats = mcts.search()
        assert stats.best_reward >= 0.8 * total_blocks

    def test_more_budget_never_worse(self):
        wl = self._workload()
        small = MCTS(wl, 3, _block_sum_evaluator(wl),
                     MCTSConfig(iterations=10, seed=3)).search()[1]
        large = MCTS(wl, 3, _block_sum_evaluator(wl),
                     MCTSConfig(iterations=120, seed=3)).search()[1]
        assert large.best_reward >= small.best_reward

    def test_all_disqualified_still_returns_mapping(self):
        wl = self._workload()

        def reject_all(mappings):
            return np.full(len(mappings), DISQUALIFIED)

        mapping, stats = MCTS(wl, 3, reject_all,
                              MCTSConfig(iterations=5)).search()
        mapping.validate_against(wl, 3)
        assert stats.disqualified == stats.evaluations

    def test_deterministic_with_seed(self):
        wl = self._workload()
        m1, _ = MCTS(wl, 3, _block_sum_evaluator(wl),
                     MCTSConfig(iterations=20, seed=7)).search()
        m2, _ = MCTS(wl, 3, _block_sum_evaluator(wl),
                     MCTSConfig(iterations=20, seed=7)).search()
        assert m1.assignments == m2.assignments

    def test_rollout_persistence_reduces_fragmentation(self):
        wl = self._workload()
        sticky = MCTS(wl, 3, _block_sum_evaluator(wl),
                      MCTSConfig(iterations=1, rollouts_per_leaf=50,
                                 rollout_persistence=0.95, seed=0))
        loose = MCTS(wl, 3, _block_sum_evaluator(wl),
                     MCTSConfig(iterations=1, rollouts_per_leaf=50,
                                rollout_persistence=0.0, seed=0))

        def mean_stages(search):
            counts = []

            def record(mappings):
                counts.extend(m.num_stages() for m in mappings)
                return np.zeros(len(mappings))

            search.evaluator = record
            search.search()
            return np.mean(counts)

        assert mean_stages(sticky) < mean_stages(loose) / 2

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            MCTS([], 3, lambda m: np.zeros(0))

    def test_bad_evaluator_shape_rejected(self):
        wl = self._workload()
        mcts = MCTS(wl, 3, lambda m: np.zeros(99), MCTSConfig(iterations=2))
        with pytest.raises(ValueError):
            mcts.search()


class TestRandomSearch:
    def test_finds_good_mapping_on_toy_objective(self):
        wl = [get_model("alexnet")]
        mapping, reward = random_search(
            wl, 3, _block_sum_evaluator(wl), evaluations=200,
            rng=np.random.default_rng(0),
        )
        mapping.validate_against(wl, 3)
        assert reward >= 6  # most of alexnet's 8 blocks on component 1

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            random_search([get_model("alexnet")], 3,
                          _block_sum_evaluator(None), 0,
                          np.random.default_rng(0))
