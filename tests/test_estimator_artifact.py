"""Estimator artifact persistence + the runner's predictor resolution.

Covers the satellite edge cases: save/load round-trips bit-exactly, a
platform-fingerprint mismatch downgrades a serving scenario to the
oracle with a warning (matching the ``cache_path`` behaviour), and a
corrupt/truncated/missing artifact fails loudly instead of silently
serving the wrong study.
"""

import pickle

import numpy as np
import pytest

from repro.estimator import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactLineage,
    ArtifactPlatformMismatch,
    EstimatorConfig,
    ThroughputEstimator,
    artifact_generation_candidates,
    artifact_generation_path,
    latest_artifact_generation,
    load_estimator_artifact,
    save_estimator_artifact,
)
from repro.hw import jetson_class, orange_pi_5
from repro.runner import (DynamicScenario, execute_dynamic_scenario,
                          resolve_predictor)
from repro.sim import EvaluationCache
from repro.vqvae import LayerVQVAE
from repro.zoo import get_model

SMALL_CFG = EstimatorConfig(max_dnns=4, max_layers=32, stem_channels=8,
                            block_channels=(8, 12, 16), attn_dim=8,
                            decoder_dim=12)

SMALL_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")

DYNAMIC_FAST = dict(horizon_s=180.0, arrival_rate_per_s=1 / 30,
                    mean_session_s=100.0, pool=SMALL_POOL, capacity=2,
                    search_iterations=4, search_rollouts=2)


@pytest.fixture(scope="module")
def trained():
    """A (small) estimator + VQ-VAE pair, deterministic per session."""
    estimator = ThroughputEstimator(np.random.default_rng(1), SMALL_CFG)
    vqvae = LayerVQVAE(np.random.default_rng(0))
    return estimator, vqvae


@pytest.fixture()
def artifact_path(trained, tmp_path):
    """An artifact for the Orange Pi 5 board under a temp path."""
    estimator, vqvae = trained
    path = tmp_path / "estimator.pkl"
    save_estimator_artifact(path, estimator, vqvae, orange_pi_5(),
                            val_l2=0.25, val_spearman=0.9)
    return path


class TestArtifactRoundTrip:
    def test_predictions_bit_identical(self, trained, artifact_path):
        estimator, _ = trained
        loaded = load_estimator_artifact(artifact_path, orange_pi_5())
        q = np.random.default_rng(2).normal(
            size=(3, 4, 32, 48)).astype(np.float32)
        np.testing.assert_array_equal(loaded.estimator.predict_rates(q),
                                      estimator.predict_rates(q))
        assert loaded.config == SMALL_CFG

    def test_embeddings_bit_identical(self, trained, artifact_path):
        _, vqvae = trained
        loaded = load_estimator_artifact(artifact_path, orange_pi_5())
        model = get_model("resnet50")
        np.testing.assert_array_equal(loaded.vqvae.embed_model(model),
                                      vqvae.embed_model(model))

    def test_metadata_round_trips(self, artifact_path):
        loaded = load_estimator_artifact(artifact_path, orange_pi_5())
        assert loaded.platform_name == "orange_pi_5"
        assert loaded.val_l2 == pytest.approx(0.25)
        assert loaded.val_spearman == pytest.approx(0.9)

    def test_loaded_modules_in_eval_mode(self, artifact_path):
        loaded = load_estimator_artifact(artifact_path, orange_pi_5())
        assert not loaded.estimator.training
        assert not loaded.vqvae.training


class TestArtifactRefusals:
    def test_platform_mismatch_raises_distinct_error(self, artifact_path):
        with pytest.raises(ArtifactPlatformMismatch,
                           match="trained for platform 'orange_pi_5'"):
            load_estimator_artifact(artifact_path, jetson_class())

    def test_mismatch_is_a_value_error(self, artifact_path):
        # Callers without a fallback may catch the base class.
        with pytest.raises(ValueError):
            load_estimator_artifact(artifact_path, jetson_class())

    def test_corrupt_file_raises_clear_error(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"definitely not a pickle")
        with pytest.raises(ValueError, match="corrupt estimator artifact"):
            load_estimator_artifact(path, orange_pi_5())

    def test_truncated_file_raises_clear_error(self, artifact_path):
        artifact_path.write_bytes(artifact_path.read_bytes()[:64])
        with pytest.raises(ValueError, match="corrupt estimator artifact"):
            load_estimator_artifact(artifact_path, orange_pi_5())

    def test_unknown_format_version_refused(self, artifact_path):
        payload = pickle.loads(artifact_path.read_bytes())
        payload["version"] = ARTIFACT_FORMAT_VERSION + 1
        artifact_path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_estimator_artifact(artifact_path, orange_pi_5())

    def test_wrong_payload_type_refused(self, tmp_path):
        path = tmp_path / "list.pkl"
        path.write_bytes(pickle.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="corrupt estimator artifact"):
            load_estimator_artifact(path, orange_pi_5())

    def test_missing_weight_arrays_refused(self, artifact_path):
        payload = pickle.loads(artifact_path.read_bytes())
        del payload["estimator_arrays"]
        artifact_path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ValueError, match="corrupt estimator artifact"):
            load_estimator_artifact(artifact_path, orange_pi_5())


class TestScenarioResolution:
    def test_mismatched_platform_downgrades_to_oracle_with_warning(
            self, artifact_path):
        """The cache_path analogue: an artifact trained for another board
        must not abort a heterogeneous sweep — the node serves on the
        oracle and says so."""
        spec = DynamicScenario(name="jet", manager="rankmap_d",
                               policy="warm", platform="jetson_class",
                               predictor="estimator",
                               estimator_path=str(artifact_path),
                               **DYNAMIC_FAST)
        with pytest.warns(UserWarning, match="downgrading to the oracle"):
            downgraded = execute_dynamic_scenario(spec)
        oracle = execute_dynamic_scenario(
            DynamicScenario(name="jet", manager="rankmap_d", policy="warm",
                            platform="jetson_class", **DYNAMIC_FAST))
        assert downgraded.report == oracle.report

    def test_corrupt_artifact_fails_scenario_loudly(self, tmp_path):
        path = tmp_path / "bad.pkl"
        path.write_bytes(b"nope")
        spec = DynamicScenario(name="x", manager="rankmap_d",
                               predictor="estimator",
                               estimator_path=str(path), **DYNAMIC_FAST)
        with pytest.raises(ValueError, match="corrupt estimator artifact"):
            execute_dynamic_scenario(spec)

    def test_missing_artifact_fails_scenario_loudly(self, tmp_path):
        spec = DynamicScenario(name="x", manager="rankmap_d",
                               predictor="estimator",
                               estimator_path=str(tmp_path / "nope.pkl"),
                               **DYNAMIC_FAST)
        with pytest.raises(FileNotFoundError):
            execute_dynamic_scenario(spec)

    def test_capacity_beyond_estimator_slots_rejected(self, artifact_path):
        spec = DynamicScenario(name="big", manager="rankmap_d",
                               predictor="estimator",
                               estimator_path=str(artifact_path),
                               horizon_s=180.0, arrival_rate_per_s=1 / 30,
                               mean_session_s=100.0, pool=SMALL_POOL,
                               capacity=5, search_iterations=4)
        with pytest.raises(ValueError, match="max_dnns"):
            execute_dynamic_scenario(spec)

    def test_renegotiate_overcommit_counts_against_slots(
            self, artifact_path):
        """capacity == max_dnns is fine without preemption but the
        renegotiate policy's one-slot overcommit pushes past it."""
        spec = DynamicScenario(name="over", manager="rankmap_d",
                               predictor="estimator",
                               estimator_path=str(artifact_path),
                               horizon_s=180.0, arrival_rate_per_s=1 / 30,
                               mean_session_s=100.0, pool=SMALL_POOL,
                               capacity=4, preemption="renegotiate",
                               search_iterations=4)
        with pytest.raises(ValueError, match="max_dnns"):
            execute_dynamic_scenario(spec)


class TestReviewRegressions:
    """Fixes from the PR's review pass, locked in."""

    def test_failed_save_leaves_no_temp_file(self, trained, tmp_path,
                                             monkeypatch):
        """A save that dies mid-dump must not orphan its temp file."""
        estimator, vqvae = trained

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(pickle, "dump", boom)
        with pytest.raises(OSError, match="disk full"):
            save_estimator_artifact(tmp_path / "a.pkl", estimator, vqvae,
                                    orange_pi_5())
        assert list(tmp_path.iterdir()) == []

    def test_mismatch_memoised_but_still_warns_per_scenario(
            self, artifact_path):
        """The mismatch verdict is negatively memoised (no re-unpickle)
        per worker, but every downgraded scenario still says so."""
        spec = DynamicScenario(name="jet2", manager="rankmap_d",
                               platform="jetson_class",
                               predictor="estimator",
                               estimator_path=str(artifact_path),
                               **DYNAMIC_FAST)
        with pytest.warns(UserWarning, match="downgrading to the oracle"):
            execute_dynamic_scenario(spec)
        with pytest.warns(UserWarning, match="downgrading to the oracle"):
            execute_dynamic_scenario(spec)

    def test_serve_sweep_refuses_all_downgrade_platform(self, tmp_path):
        """predictor='estimator' on a platform the context did not train
        for is a config error, not a silently-oracle study."""
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        with pytest.raises(ValueError, match="downgrade every cell"):
            ctx.serve_sweep(policies=("full",), managers=("baseline",),
                            traces_per_cell=1, horizon_s=120.0,
                            pool=SMALL_POOL, platform="jetson_class",
                            predictor="estimator", max_workers=1)

    def test_fleet_serve_sweep_refuses_all_downgrade_platforms(
            self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        with pytest.raises(ValueError, match="every node"):
            ctx.fleet_serve_sweep(routings=("round_robin",), num_nodes=2,
                                  traces_per_cell=1, horizon_s=120.0,
                                  pool=SMALL_POOL,
                                  platforms=("jetson_class",),
                                  predictor="estimator", max_workers=1)

    def test_fleet_guard_checks_assigned_node_platforms(self, tmp_path):
        """A short fleet that never cycles to the matching platform entry
        must be refused even when the tuple *contains* it."""
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        with pytest.raises(ValueError, match="every node"):
            ctx.fleet_serve_sweep(
                routings=("round_robin",), num_nodes=1, traces_per_cell=1,
                horizon_s=120.0, pool=SMALL_POOL,
                platforms=("jetson_class", "orange_pi_5"),
                predictor="estimator", max_workers=1)

    def test_stale_artifact_for_other_platform_is_retrained(self, tmp_path,
                                                            trained):
        """A results dir holding an artifact trained on another board must
        not be fanned out as this context's estimator — the path is
        platform-keyed and an existing file is validated before reuse."""
        from repro.experiments import ExperimentContext

        estimator, vqvae = trained
        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        # Plant a jetson-trained artifact exactly where the context will
        # look for its own.
        planted = (tmp_path /
                   f"estimator_tiny_{ctx.platform.name}.pkl")
        save_estimator_artifact(planted, estimator, vqvae, jetson_class())
        path = ctx.estimator_artifact_path()
        assert path == planted
        loaded = load_estimator_artifact(path, ctx.platform)  # no raise
        assert loaded.platform_name == ctx.platform.name

    def test_component_count_mismatch_rejected_loudly(self, tmp_path,
                                                      trained):
        """An artifact featurizing a different component count than the
        node's platform must fail at resolve time with a clear error,
        not an IndexError mid-trace inside the Q scatter."""
        _, vqvae = trained
        cfg2 = EstimatorConfig(max_dnns=4, max_layers=32, num_components=2,
                               stem_channels=8, block_channels=(8, 12, 16),
                               attn_dim=8, decoder_dim=12)
        path = tmp_path / "two_comp.pkl"
        save_estimator_artifact(
            path, ThroughputEstimator(np.random.default_rng(1), cfg2),
            vqvae, orange_pi_5())
        spec = DynamicScenario(name="c", manager="rankmap_d",
                               predictor="estimator",
                               estimator_path=str(path), **DYNAMIC_FAST)
        with pytest.raises(ValueError, match="components"):
            execute_dynamic_scenario(spec)


class TestArtifactLineage:
    """The v2 format's provenance block (PR: closed-loop fine-tuning)."""

    def test_fresh_save_has_base_lineage(self, artifact_path):
        loaded = load_estimator_artifact(artifact_path, orange_pi_5())
        assert loaded.lineage == ArtifactLineage()
        assert loaded.lineage.parent_hash is None
        assert loaded.lineage.finetune_epoch == 0

    def test_lineage_round_trips(self, trained, tmp_path):
        estimator, vqvae = trained
        path = tmp_path / "child.pkl"
        lineage = ArtifactLineage(parent_hash="ab" * 32, segment_count=7,
                                  finetune_epoch=3)
        save_estimator_artifact(path, estimator, vqvae, orange_pi_5(),
                                lineage=lineage)
        assert load_estimator_artifact(path, orange_pi_5()).lineage == lineage

    def test_v1_payload_loads_with_default_lineage(self, artifact_path):
        """Pre-lineage artifacts on disk stay readable."""
        payload = pickle.loads(artifact_path.read_bytes())
        payload["version"] = 1
        del payload["lineage"]
        artifact_path.write_bytes(pickle.dumps(payload))
        loaded = load_estimator_artifact(artifact_path, orange_pi_5())
        assert loaded.lineage == ArtifactLineage()

    def test_v1_and_v2_predictions_identical(self, trained, artifact_path,
                                             tmp_path):
        """The lineage block is pure metadata: downgrading the payload to
        v1 must not change a single predicted rate."""
        v2 = load_estimator_artifact(artifact_path, orange_pi_5())
        payload = pickle.loads(artifact_path.read_bytes())
        payload["version"] = 1
        del payload["lineage"]
        v1_path = tmp_path / "v1.pkl"
        v1_path.write_bytes(pickle.dumps(payload))
        v1 = load_estimator_artifact(v1_path, orange_pi_5())
        q = np.random.default_rng(5).normal(
            size=(2, 4, 32, 48)).astype(np.float32)
        np.testing.assert_array_equal(v1.estimator.predict_rates(q),
                                      v2.estimator.predict_rates(q))

    def test_non_dict_lineage_refused(self, artifact_path):
        payload = pickle.loads(artifact_path.read_bytes())
        payload["lineage"] = ["not", "a", "dict"]
        artifact_path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ValueError, match="lineage is list"):
            load_estimator_artifact(artifact_path, orange_pi_5())

    def test_unknown_lineage_field_refused(self, artifact_path):
        payload = pickle.loads(artifact_path.read_bytes())
        payload["lineage"]["surprise"] = 1
        artifact_path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ValueError, match="unknown lineage field"):
            load_estimator_artifact(artifact_path, orange_pi_5())

    def test_mistyped_lineage_values_refused(self, artifact_path):
        payload = pickle.loads(artifact_path.read_bytes())
        payload["lineage"]["finetune_epoch"] = True
        artifact_path.write_bytes(pickle.dumps(payload))
        with pytest.raises(ValueError, match="finetune_epoch"):
            load_estimator_artifact(artifact_path, orange_pi_5())

    def test_v2_platform_mismatch_still_distinct_error(self, trained,
                                                       tmp_path):
        """A fine-tuned (lineage-carrying) artifact for another board
        raises the recoverable mismatch subclass, not plain corruption."""
        estimator, vqvae = trained
        path = tmp_path / "ft.pkl"
        save_estimator_artifact(
            path, estimator, vqvae, jetson_class(),
            lineage=ArtifactLineage(parent_hash="cd" * 32,
                                    segment_count=2, finetune_epoch=1))
        with pytest.raises(ArtifactPlatformMismatch):
            load_estimator_artifact(path, orange_pi_5())


class TestGenerationFamily:
    """Path arithmetic for fine-tuned artifact generations."""

    def test_generation_path_naming(self, tmp_path):
        base = tmp_path / "estimator.pkl"
        assert artifact_generation_path(base, 1).name == "estimator.gen1.pkl"
        assert artifact_generation_path(base, 12).name == "estimator.gen12.pkl"

    def test_generation_path_rejects_generation_bases(self, tmp_path):
        with pytest.raises(ValueError, match="family base"):
            artifact_generation_path(tmp_path / "estimator.gen1.pkl", 2)

    def test_generation_zero_is_the_base(self, tmp_path):
        with pytest.raises(ValueError, match=">= 1"):
            artifact_generation_path(tmp_path / "estimator.pkl", 0)

    def test_candidates_newest_first_base_last(self, artifact_path):
        for n in (1, 3):
            artifact_generation_path(artifact_path, n).write_bytes(b"x")
        names = [p.name for p in
                 artifact_generation_candidates(artifact_path)]
        assert names == ["estimator.gen3.pkl", "estimator.gen1.pkl",
                         "estimator.pkl"]

    def test_pinned_generation_is_exact(self, artifact_path):
        pinned = artifact_generation_path(artifact_path, 2)
        assert artifact_generation_candidates(pinned) == [pinned]

    def test_unrelated_siblings_ignored(self, artifact_path):
        (artifact_path.parent / "other.gen5.pkl").write_bytes(b"x")
        (artifact_path.parent / "estimator.gen2.txt").write_bytes(b"x")
        assert artifact_generation_candidates(artifact_path) == \
            [artifact_path]

    def test_latest_generation_number(self, artifact_path):
        assert latest_artifact_generation(artifact_path) == 0
        artifact_generation_path(artifact_path, 4).write_bytes(b"x")
        assert latest_artifact_generation(artifact_path) == 4


class TestGenerationResolutionPreference:
    """resolve_predictor walks the family newest-first (closed loop)."""

    def _spec(self, path, platform="orange_pi_5"):
        return DynamicScenario(name="gen", manager="rankmap_d",
                               policy="warm", platform=platform,
                               predictor="estimator",
                               estimator_path=str(path), **DYNAMIC_FAST)

    def _newer(self, trained, artifact_path, platform):
        """A gen1 sibling with *different* weights than the base."""
        _, vqvae = trained
        newer = ThroughputEstimator(np.random.default_rng(9), SMALL_CFG)
        save_estimator_artifact(
            artifact_generation_path(artifact_path, 1), newer, vqvae,
            platform)
        return newer

    def test_newest_compatible_generation_wins(self, trained,
                                               artifact_path):
        newer = self._newer(trained, artifact_path, orange_pi_5())
        predictor = resolve_predictor(self._spec(artifact_path),
                                      orange_pi_5(),
                                      EvaluationCache(orange_pi_5()))
        q = np.random.default_rng(6).normal(
            size=(2, 4, 32, 48)).astype(np.float32)
        np.testing.assert_array_equal(predictor.estimator.predict_rates(q),
                                      newer.predict_rates(q))

    def test_naming_a_generation_pins_it(self, trained, artifact_path):
        self._newer(trained, artifact_path, orange_pi_5())
        pinned = artifact_generation_path(artifact_path, 1)
        # Add a newer generation that must NOT be picked up.
        _, vqvae = trained
        save_estimator_artifact(
            artifact_generation_path(artifact_path, 2),
            ThroughputEstimator(np.random.default_rng(11), SMALL_CFG),
            vqvae, orange_pi_5())
        predictor = resolve_predictor(self._spec(pinned), orange_pi_5(),
                                      EvaluationCache(orange_pi_5()))
        expected = load_estimator_artifact(pinned, orange_pi_5())
        q = np.random.default_rng(6).normal(
            size=(2, 4, 32, 48)).astype(np.float32)
        np.testing.assert_array_equal(
            predictor.estimator.predict_rates(q),
            expected.estimator.predict_rates(q))

    def test_mismatched_generation_falls_back_to_base(self, trained,
                                                      artifact_path,
                                                      recwarn):
        """A child fine-tuned for another board must not shadow a
        compatible base — and the fallback is silent (no downgrade)."""
        self._newer(trained, artifact_path, jetson_class())
        base = load_estimator_artifact(artifact_path, orange_pi_5())
        predictor = resolve_predictor(self._spec(artifact_path),
                                      orange_pi_5(),
                                      EvaluationCache(orange_pi_5()))
        q = np.random.default_rng(6).normal(
            size=(2, 4, 32, 48)).astype(np.float32)
        np.testing.assert_array_equal(predictor.estimator.predict_rates(q),
                                      base.estimator.predict_rates(q))
        assert not [w for w in recwarn
                    if "downgrading" in str(w.message)]

    def test_every_candidate_mismatching_downgrades(self, trained,
                                                    tmp_path):
        """Only when the whole family is foreign does the scenario
        downgrade to the oracle (with the warning naming the newest)."""
        estimator, vqvae = trained
        base = tmp_path / "estimator.pkl"
        save_estimator_artifact(base, estimator, vqvae, jetson_class())
        save_estimator_artifact(artifact_generation_path(base, 1),
                                estimator, vqvae, jetson_class())
        with pytest.warns(UserWarning, match="downgrading to the oracle"):
            predictor = resolve_predictor(self._spec(base), orange_pi_5(),
                                          EvaluationCache(orange_pi_5()))
        assert not hasattr(predictor, "estimator")  # oracle, not learned

    def test_corrupt_generation_blocks_family(self, artifact_path):
        """A corrupt *newer* generation must fail loudly rather than
        silently serve the stale base weights."""
        artifact_generation_path(artifact_path, 1).write_bytes(b"junk")
        with pytest.raises(ValueError, match="corrupt estimator artifact"):
            resolve_predictor(self._spec(artifact_path), orange_pi_5(),
                              EvaluationCache(orange_pi_5()))
