"""Calibration tests: the simulated Orange Pi 5 must reproduce the paper's
reported ideal throughputs and the qualitative speed structure of the board.

The paper (Sec. V-B) reports GPU-solo rates of ~43 inf/s for AlexNet,
~67 inf/s for SqueezeNet-V1, ~20 inf/s for ResNet-50 and ~4 inf/s for
Inception-ResNet-V1.  Absolute agreement is not expected from an analytical
model; we assert the documented bands (factor <= 1.6 for the first three,
<= 3 for Inception-ResNet-V1 whose branchy runtime behaviour is hardest to
capture) and, more importantly, the orderings the evaluation relies on.
"""

import pytest

from repro.hw import BIG, GPU, LITTLE, orange_pi_5, solo_throughput
from repro.zoo import get_model

PLATFORM = orange_pi_5()


def gpu_rate(name: str) -> float:
    return solo_throughput(get_model(name), PLATFORM.components[GPU])


class TestPaperAnchors:
    @pytest.mark.parametrize("name,paper_rate,band", [
        ("alexnet", 43.0, 1.6),
        ("squeezenet", 67.0, 1.6),
        ("resnet50", 20.0, 1.6),
        ("inception_resnet_v1", 4.0, 3.0),
    ])
    def test_gpu_solo_rate_within_band(self, name, paper_rate, band):
        ours = gpu_rate(name)
        assert paper_rate / band <= ours <= paper_rate * band, (
            f"{name}: {ours:.1f} inf/s vs paper {paper_rate}"
        )

    def test_fig8_arrival_ordering(self):
        """Fig. 8's narrative: Inception-ResNet-V1 is by far the most
        demanding, SqueezeNet the lightest."""
        ir = gpu_rate("inception_resnet_v1")
        alex = gpu_rate("alexnet")
        squeeze = gpu_rate("squeezenet")
        resnet = gpu_rate("resnet50")
        assert ir < resnet < alex < squeeze


class TestHeterogeneityStructure:
    def test_components_ordered_for_heavy_convs(self):
        """GPU >> big >> LITTLE for compute-dense models."""
        for name in ("vgg16", "resnet50", "inception_v4", "yolo_v3"):
            m = get_model(name)
            rates = [solo_throughput(m, c) for c in PLATFORM.components]
            assert rates[GPU] > rates[BIG] > rates[LITTLE], name

    def test_light_models_lose_less_by_leaving_gpu(self):
        """Key Fig. 2 mechanism: the CPU/GPU gap shrinks for light DNNs,
        so partitioned mappings can relocate them cheaply."""

        def gpu_over_big(name):
            m = get_model(name)
            return (solo_throughput(m, PLATFORM.components[GPU])
                    / solo_throughput(m, PLATFORM.components[BIG]))

        assert gpu_over_big("vgg16") > 3 * gpu_over_big("squeezenet_v2")
        assert gpu_over_big("inception_v4") > gpu_over_big("mobilenet_v2")

    def test_little_slower_than_big_everywhere(self):
        for name in ("alexnet", "mobilenet", "resnet50", "squeezenet_v2"):
            m = get_model(name)
            assert (solo_throughput(m, PLATFORM.components[BIG])
                    > solo_throughput(m, PLATFORM.components[LITTLE])), name

    def test_gpu_interference_harsher_than_cpu(self):
        gpu = PLATFORM.components[GPU]
        big = PLATFORM.components[BIG]
        assert gpu.interference_factor(4) > big.interference_factor(4)

    def test_gpu_sharing_biased_toward_long_kernels(self):
        assert PLATFORM.components[GPU].sharing_bias > \
            PLATFORM.components[BIG].sharing_bias
