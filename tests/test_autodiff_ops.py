"""Unit tests for structured ops: convolutions, pooling, softmax, etc."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, ops


def rng():
    return np.random.default_rng(7)


class TestJoin:
    def test_concat_forward_backward(self):
        g = rng()
        a = Tensor(g.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(g.normal(size=(2, 2)), requires_grad=True)
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        check_gradients(lambda: ops.concat([a, b], axis=1).sum(), [a, b])

    def test_stack(self):
        g = rng()
        a = Tensor(g.normal(size=(3,)), requires_grad=True)
        b = Tensor(g.normal(size=(3,)), requires_grad=True)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        check_gradients(lambda: ops.stack([a, b]).sum(), [a, b])


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(rng().normal(size=(4, 6)))
        s = ops.softmax(x, axis=-1)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4), rtol=1e-10)

    def test_softmax_gradcheck(self):
        x = Tensor(rng().normal(size=(2, 5)), requires_grad=True)
        w = Tensor(rng().normal(size=(2, 5)))
        check_gradients(lambda: (ops.softmax(x, axis=-1) * w).sum(), [x], rtol=1e-3)

    def test_log_softmax_gradcheck(self):
        x = Tensor(rng().normal(size=(2, 5)), requires_grad=True)
        w = Tensor(rng().normal(size=(2, 5)))
        check_gradients(lambda: (ops.log_softmax(x, axis=-1) * w).sum(), [x], rtol=1e-3)

    def test_softmax_stability_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        s = ops.softmax(x)
        np.testing.assert_allclose(s.data, [[0.5, 0.5]])


class TestConv2d:
    def test_forward_matches_naive(self):
        g = rng()
        x = Tensor(g.normal(size=(1, 2, 5, 5)))
        w = Tensor(g.normal(size=(3, 2, 3, 3)))
        out = ops.conv2d(x, w, stride=1, padding=0)
        # Naive reference
        ref = np.zeros((1, 3, 3, 3))
        for f in range(3):
            for i in range(3):
                for j in range(3):
                    ref[0, f, i, j] = (x.data[0, :, i : i + 3, j : j + 3] * w.data[f]).sum()
        np.testing.assert_allclose(out.data, ref, rtol=1e-10)

    def test_padding_and_stride_shapes(self):
        x = Tensor(np.zeros((2, 3, 8, 8)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        out = ops.conv2d(x, w, stride=2, padding=1)
        assert out.shape == (2, 4, 4, 4)

    def test_gradcheck(self):
        g = rng()
        x = Tensor(g.normal(size=(2, 2, 5, 5)), requires_grad=True)
        w = Tensor(g.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(g.normal(size=(3,)), requires_grad=True)
        check_gradients(
            lambda: ops.conv2d(x, w, b, stride=2, padding=1).sum(), [x, w, b], rtol=1e-3
        )

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 2, 4, 4)))
        w = Tensor(np.zeros((3, 5, 3, 3)))
        with pytest.raises(ValueError):
            ops.conv2d(x, w)


class TestDepthwiseConv2d:
    def test_channels_stay_independent(self):
        g = rng()
        x = np.zeros((1, 2, 5, 5))
        x[0, 0] = g.normal(size=(5, 5))  # only channel 0 carries signal
        w = Tensor(np.ones((2, 3, 3)))
        out = ops.depthwise_conv2d(Tensor(x), w, padding=1)
        assert np.abs(out.data[0, 1]).max() == 0.0
        assert np.abs(out.data[0, 0]).max() > 0.0

    def test_gradcheck(self):
        g = rng()
        x = Tensor(g.normal(size=(2, 3, 5, 5)), requires_grad=True)
        w = Tensor(g.normal(size=(3, 3, 3)), requires_grad=True)
        b = Tensor(g.normal(size=(3,)), requires_grad=True)
        check_gradients(
            lambda: ops.depthwise_conv2d(x, w, b, stride=1, padding=1).sum(),
            [x, w, b],
            rtol=1e-3,
        )

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            ops.depthwise_conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((3, 3, 3))))


class TestConv1d:
    def test_forward_matches_naive(self):
        g = rng()
        x = Tensor(g.normal(size=(1, 2, 7)))
        w = Tensor(g.normal(size=(3, 2, 3)))
        out = ops.conv1d(x, w)
        ref = np.zeros((1, 3, 5))
        for f in range(3):
            for i in range(5):
                ref[0, f, i] = (x.data[0, :, i : i + 3] * w.data[f]).sum()
        np.testing.assert_allclose(out.data, ref, rtol=1e-10)

    def test_gradcheck(self):
        g = rng()
        x = Tensor(g.normal(size=(2, 2, 6)), requires_grad=True)
        w = Tensor(g.normal(size=(4, 2, 3)), requires_grad=True)
        b = Tensor(g.normal(size=(4,)), requires_grad=True)
        check_gradients(lambda: ops.conv1d(x, w, b, padding=1).sum(), [x, w, b], rtol=1e-3)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            ops.conv1d(Tensor(np.zeros((1, 2, 5))), Tensor(np.zeros((3, 4, 3))))


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = ops.max_pool2d(Tensor(x), kernel=2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradcheck(self):
        # Use distinct values so argmax is stable under perturbation.
        g = rng()
        base = np.arange(32.0).reshape(2, 1, 4, 4) + g.uniform(0, 0.3, size=(2, 1, 4, 4))
        x = Tensor(base, requires_grad=True)
        check_gradients(lambda: ops.max_pool2d(x, 2).sum(), [x], rtol=1e-3)

    def test_avg_pool_forward(self):
        x = np.ones((1, 2, 4, 4))
        out = ops.avg_pool2d(Tensor(x), kernel=2)
        np.testing.assert_allclose(out.data, np.ones((1, 2, 2, 2)))

    def test_avg_pool_gradcheck(self):
        x = Tensor(rng().normal(size=(1, 2, 4, 4)), requires_grad=True)
        check_gradients(lambda: ops.avg_pool2d(x, 2).sum(), [x], rtol=1e-3)

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4)))
        out = ops.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, np.ones((2, 3)))


class TestMisc:
    def test_straight_through_forwards_quantized(self):
        q = Tensor([1.0, 2.0])
        c = Tensor([0.5, 0.7], requires_grad=True)
        out = ops.straight_through(q, c)
        np.testing.assert_allclose(out.data, [1.0, 2.0])

    def test_straight_through_grad_to_continuous(self):
        q = Tensor([1.0, 2.0])
        c = Tensor([0.5, 0.7], requires_grad=True)
        (ops.straight_through(q, c) * 3.0).sum().backward()
        np.testing.assert_allclose(c.grad, [3.0, 3.0])

    def test_dropout_eval_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = ops.dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        g = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = ops.dropout(x, 0.3, g, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_pad2d_and_grad(self):
        x = Tensor(rng().normal(size=(1, 1, 3, 3)), requires_grad=True)
        out = ops.pad2d(x, (1, 2))
        assert out.shape == (1, 1, 5, 7)
        check_gradients(lambda: ops.pad2d(x, (1, 2)).sum(), [x])

    def test_pad2d_zero_is_identity(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert ops.pad2d(x, (0, 0)) is x

    def test_clip_values_grad_masked(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        ops.clip_values(x, -1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_where_mask(self):
        mask = np.array([True, False])
        a = Tensor([1.0, 1.0], requires_grad=True)
        b = Tensor([2.0, 2.0], requires_grad=True)
        out = ops.where_mask(mask, a, b)
        np.testing.assert_allclose(out.data, [1.0, 2.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])
