"""Tests for repro.workloads: mixes, scenarios, traces and SLA groups."""

import numpy as np
import pytest

from repro.hw import orange_pi_5
from repro.sim import run_dynamic_scenario
from repro.sim.dynamic import MappingDecision
from repro.workloads import (
    BRONZE,
    FIG8_ARRIVALS,
    FIG10_STAGES,
    FIG10_WORKLOAD,
    GOLD,
    MOTIVATION_WORKLOAD,
    SILVER,
    SlaClass,
    TraceConfig,
    assign_tiers,
    evaluate_sla,
    fig8_events,
    fig10_events,
    mix_names,
    motivation_workload,
    paper_mixes,
    poisson_trace,
    rotating_priority_schedule,
    sample_mix,
    staggered_arrivals,
    total_demand_macs,
    trace_peak_concurrency,
)
from repro.zoo import get_model


# ---------------------------------------------------------------- mixes
class TestMixes:
    def test_motivation_workload_matches_paper(self):
        assert MOTIVATION_WORKLOAD == (
            "squeezenet_v2", "inception_v4", "resnet50", "vgg16")
        models = motivation_workload()
        assert [m.name for m in models] == list(MOTIVATION_WORKLOAD)

    def test_sample_mix_distinct_models(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            mix = sample_mix(rng, 5)
            names = mix_names(mix)
            assert len(set(names)) == 5

    def test_sample_mix_size_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_mix(rng, 0)
        with pytest.raises(ValueError):
            sample_mix(rng, 24)  # pool has 23 models

    def test_sample_mix_custom_pool(self):
        rng = np.random.default_rng(0)
        pool = ("alexnet", "vgg16")
        mix = sample_mix(rng, 2, pool=pool)
        assert set(mix_names(mix)) == set(pool)

    def test_paper_mixes_grid_shape(self):
        rng = np.random.default_rng(3)
        grid = paper_mixes(rng)
        assert sorted(grid) == [3, 4, 5]
        assert all(len(mixes) == 6 for mixes in grid.values())
        total_instances = sum(size * len(mixes)
                              for size, mixes in grid.items())
        assert total_instances == 72  # the paper's Fig. 7 population

    def test_paper_mixes_deterministic_given_seed(self):
        a = paper_mixes(np.random.default_rng(11))
        b = paper_mixes(np.random.default_rng(11))
        for size in a:
            assert [mix_names(m) for m in a[size]] == \
                   [mix_names(m) for m in b[size]]

    def test_total_demand_macs_is_sum(self):
        models = motivation_workload()
        assert total_demand_macs(models) == sum(m.macs for m in models)
        assert total_demand_macs(models[:1]) == models[0].macs


# ------------------------------------------------------------ scenarios
class TestScenarios:
    def test_fig8_events_match_paper_order(self):
        events = fig8_events()
        assert [(e.time, e.model.name) for e in events] == list(FIG8_ARRIVALS)
        assert all(e.kind == "arrival" for e in events)

    def test_fig10_events_structure(self):
        events = fig10_events()
        arrivals = [e for e in events if e.kind == "arrival"]
        shifts = [e for e in events if e.kind == "priority"]
        assert {e.model.name for e in arrivals} == set(FIG10_WORKLOAD)
        assert all(e.time == 0.0 for e in arrivals)
        assert [e.time for e in shifts] == [t for t, _ in FIG10_STAGES]
        for (t, critical), event in zip(FIG10_STAGES, shifts):
            top = max(event.priorities, key=event.priorities.get)
            assert top == critical

    def test_staggered_arrivals_cadence(self):
        models = [get_model(n) for n in ("alexnet", "vgg16", "resnet50")]
        events = staggered_arrivals(models, period=100.0, start=50.0)
        assert [e.time for e in events] == [50.0, 150.0, 250.0]

    def test_staggered_arrivals_rejects_bad_period(self):
        with pytest.raises(ValueError):
            staggered_arrivals([get_model("alexnet")], period=0.0)

    def test_rotating_schedule_rejects_unknown_name(self):
        models = [get_model("alexnet")]
        with pytest.raises(ValueError, match="not in workload"):
            rotating_priority_schedule(models, ["vgg16"])

    def test_rotating_schedule_priority_levels(self):
        models = [get_model(n) for n in ("alexnet", "vgg16")]
        events = rotating_priority_schedule(models, ["vgg16"], high=0.9,
                                            low=0.05)
        shift = [e for e in events if e.kind == "priority"][0]
        assert shift.priorities == {"vgg16": 0.9, "alexnet": 0.05}


# --------------------------------------------------------------- traces
class TestTraces:
    def test_trace_events_sorted_and_within_horizon(self):
        rng = np.random.default_rng(5)
        config = TraceConfig(horizon_s=1200.0, arrival_rate_per_s=1 / 30)
        events = poisson_trace(rng, config)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0.0 <= t < config.horizon_s for t in times)

    def test_trace_respects_concurrency_cap(self):
        rng = np.random.default_rng(9)
        config = TraceConfig(horizon_s=3000.0, arrival_rate_per_s=1 / 10,
                             mean_session_s=600.0, max_concurrent=3)
        events = poisson_trace(rng, config)
        assert trace_peak_concurrency(events) <= 3

    def test_trace_no_duplicate_live_names(self):
        rng = np.random.default_rng(13)
        config = TraceConfig(horizon_s=2000.0, arrival_rate_per_s=1 / 20,
                             mean_session_s=400.0)
        events = poisson_trace(rng, config)
        live: set[str] = set()
        for event in sorted(events,
                            key=lambda e: (e.time, e.kind != "departure")):
            if event.kind == "arrival":
                assert event.model.name not in live
                live.add(event.model.name)
            else:
                live.discard(event.model.name)

    def test_trace_reproducible(self):
        config = TraceConfig(horizon_s=900.0)
        a = poisson_trace(np.random.default_rng(21), config)
        b = poisson_trace(np.random.default_rng(21), config)
        assert [(e.time, e.kind, e.model.name) for e in a] == \
               [(e.time, e.kind, e.model.name) for e in b]

    def test_trace_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(horizon_s=0)
        with pytest.raises(ValueError):
            TraceConfig(arrival_rate_per_s=0)
        with pytest.raises(ValueError):
            TraceConfig(mean_session_s=-1)
        with pytest.raises(ValueError):
            TraceConfig(max_concurrent=0)
        with pytest.raises(ValueError):
            TraceConfig(pool=())

    def test_stats_expose_dropped_arrivals(self):
        from repro.workloads import poisson_trace_with_stats

        config = TraceConfig(horizon_s=3000.0, arrival_rate_per_s=1 / 10,
                             mean_session_s=600.0, max_concurrent=2,
                             pool=("alexnet", "vgg16", "resnet50"))
        events, stats = poisson_trace_with_stats(
            np.random.default_rng(9), config)
        admitted_events = sum(1 for e in events if e.kind == "arrival")
        assert stats.admitted == admitted_events
        assert stats.arrivals == stats.admitted + len(stats.dropped)
        # Saturated config: the blind cap must have dropped something.
        assert stats.dropped
        assert 0.0 < stats.drop_rate < 1.0
        assert all(d.reason in ("capacity", "pool") for d in stats.dropped)
        assert all(0.0 <= d.time < config.horizon_s for d in stats.dropped)

    def test_stats_variant_matches_plain_trace(self):
        from repro.workloads import poisson_trace_with_stats

        config = TraceConfig(horizon_s=1500.0, arrival_rate_per_s=1 / 20)
        plain = poisson_trace(np.random.default_rng(21), config)
        with_stats, _ = poisson_trace_with_stats(
            np.random.default_rng(21), config)
        assert [(e.time, e.kind, e.model.name) for e in plain] == \
               [(e.time, e.kind, e.model.name) for e in with_stats]


class TestSessionRequests:
    def test_requests_uncapped_and_ordered(self):
        from repro.workloads import sample_session_requests

        config = TraceConfig(horizon_s=2000.0, arrival_rate_per_s=1 / 15,
                             max_concurrent=1)
        requests = sample_session_requests(np.random.default_rng(4), config)
        times = [r.arrival_s for r in requests]
        assert times == sorted(times)
        assert all(0.0 <= t < config.horizon_s for t in times)
        assert [r.session_id for r in requests] == list(range(len(requests)))
        # ~133 expected arrivals: far beyond any max_concurrent cap.
        assert len(requests) > config.max_concurrent

    def test_tiers_rotate_deterministically(self):
        from repro.workloads import sample_session_requests

        config = TraceConfig(horizon_s=1000.0, arrival_rate_per_s=1 / 20)
        requests = sample_session_requests(np.random.default_rng(8), config)
        cycle = ("gold", "silver", "bronze")
        assert [r.tier for r in requests] == \
            [cycle[i % 3] for i in range(len(requests))]

    def test_tier_shifts_sampled_within_duration(self):
        from repro.workloads import sample_session_requests

        config = TraceConfig(horizon_s=4000.0, arrival_rate_per_s=1 / 15)
        requests = sample_session_requests(
            np.random.default_rng(2), config, tier_shift_prob=1.0)
        shifted = [r for r in requests if r.tier_shift is not None]
        assert shifted                       # every non-gold session shifts
        assert all(r.tier != "gold" for r in shifted)
        for r in shifted:
            offset, new_tier = r.tier_shift
            assert new_tier == "gold"
            assert 0.0 < offset < r.duration_s

    def test_reproducible_given_seed(self):
        from repro.workloads import sample_session_requests

        config = TraceConfig(horizon_s=900.0)
        a = sample_session_requests(np.random.default_rng(33), config,
                                    tier_shift_prob=0.5)
        b = sample_session_requests(np.random.default_rng(33), config,
                                    tier_shift_prob=0.5)
        assert a == b

    def test_argument_validation(self):
        from repro.workloads import sample_session_requests

        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_session_requests(rng, tiers=())
        with pytest.raises(ValueError):
            sample_session_requests(rng, tier_shift_prob=1.5)

    def test_iter_form_matches_list_form(self):
        from repro.workloads import (iter_session_requests,
                                     sample_session_requests)

        config = TraceConfig(horizon_s=1500.0, arrival_rate_per_s=1 / 12)
        streamed = list(iter_session_requests(np.random.default_rng(7),
                                              config, tier_shift_prob=0.4))
        sampled = sample_session_requests(np.random.default_rng(7),
                                          config, tier_shift_prob=0.4)
        assert streamed == sampled

    def test_iter_is_lazy_but_validates_eagerly(self):
        from repro.workloads import iter_session_requests

        rng = np.random.default_rng(3)
        state_before = rng.bit_generator.state
        stream = iter_session_requests(rng, TraceConfig(horizon_s=800.0))
        # No draw happened yet: the generator body has not started.
        assert rng.bit_generator.state == state_before
        first = next(stream)
        assert first.session_id == 0
        assert rng.bit_generator.state != state_before
        # ...but argument validation is eager, before any draw.
        with pytest.raises(ValueError):
            iter_session_requests(np.random.default_rng(3), tiers=())

    def test_shift_tier_sessions_consume_draw_but_never_shift(self):
        """Rng-consumption contract of the tier-shift draw.

        Whenever ``tier_shift_prob > 0`` *every* session consumes one
        uniform draw — including sessions already in ``shift_tier``,
        which can never shift.  The no-op draw advances the rng, so
        traces with and without shifts diverge after the first session;
        a mirrored manual replay pins the exact draw order.
        """
        from repro.workloads import sample_session_requests

        config = TraceConfig(horizon_s=1200.0, arrival_rate_per_s=1 / 15)
        requests = sample_session_requests(
            np.random.default_rng(11), config, tiers=("gold",),
            tier_shift_prob=0.9, shift_tier="gold")
        assert len(requests) > 10
        assert all(r.tier_shift is None for r in requests)

        # Mirror the sampler draw by draw: inter-arrival exponential,
        # duration exponential, then exactly one uniform (consumed and
        # discarded because tier == shift_tier).
        mirror = np.random.default_rng(11)
        t = 0.0
        replayed = []
        while True:
            t += mirror.exponential(1.0 / config.arrival_rate_per_s)
            if t >= config.horizon_s:
                break
            duration = mirror.exponential(config.mean_session_s)
            mirror.random()                  # the no-op shift draw
            replayed.append((float(t), float(duration)))
        assert [(r.arrival_s, r.duration_s) for r in requests] == replayed

        # Dropping the probability removes the draw, so the second
        # arrival onward sees a different rng stream.
        without = sample_session_requests(
            np.random.default_rng(11), config, tiers=("gold",),
            tier_shift_prob=0.0)
        assert without[0] == requests[0]
        assert without[1].arrival_s != requests[1].arrival_s


# ------------------------------------------------------------------ SLA
class TestSla:
    def test_sla_class_validation(self):
        with pytest.raises(ValueError):
            SlaClass("bad", priority=0.0, min_potential=0.1)
        with pytest.raises(ValueError):
            SlaClass("bad", priority=0.5, min_potential=1.5)

    def test_assign_tiers_round_robin(self):
        models = motivation_workload()
        assignment = assign_tiers(models)
        tiers = [assignment.tier_of(m.name).name for m in models]
        assert tiers == ["gold", "silver", "bronze", "gold"]

    def test_assign_tiers_explicit(self):
        models = [get_model("alexnet"), get_model("vgg16")]
        assignment = assign_tiers(models, {"alexnet": "bronze",
                                           "vgg16": "gold"})
        assert assignment.tier_of("alexnet") is BRONZE
        assert assignment.tier_of("vgg16") is GOLD

    def test_assign_tiers_rejects_missing_or_unknown(self):
        models = [get_model("alexnet")]
        with pytest.raises(ValueError, match="no tier"):
            assign_tiers(models, {})
        with pytest.raises(ValueError, match="unknown tier"):
            assign_tiers(models, {"alexnet": "platinum"})

    def test_priority_vector_normalised_and_ordered(self):
        models = [get_model("alexnet"), get_model("vgg16"),
                  get_model("resnet50")]
        assignment = assign_tiers(models, {"alexnet": "gold",
                                           "vgg16": "silver",
                                           "resnet50": "bronze"})
        p = assignment.priority_vector(models)
        assert p.sum() == pytest.approx(1.0)
        assert p[0] > p[1] > p[2]
        assert p[0] / p[2] == pytest.approx(GOLD.priority / BRONZE.priority)

    def test_evaluate_sla_on_simulated_timeline(self):
        platform = orange_pi_5()
        models = [get_model("alexnet"), get_model("squeezenet")]
        assignment = assign_tiers(models, {"alexnet": "gold",
                                           "squeezenet": "bronze"})

        from repro.baselines import GpuBaseline
        manager = GpuBaseline()

        def planner(workload, priorities):
            return manager.plan(workload, priorities)

        events = staggered_arrivals(models, period=50.0)
        timeline = run_dynamic_scenario(events, planner, platform, 200.0)
        report = evaluate_sla(timeline, assignment)
        assert report.observed_seconds > 0
        assert 0.0 <= report.violation_fraction <= 1.0
        assert set(report.mean_potential_by_tier) <= {"gold", "bronze"}

    def test_evaluate_sla_flags_violations(self):
        # A synthetic zero-rate planner must violate every positive floor.
        platform = orange_pi_5()
        models = [get_model("alexnet")]
        assignment = assign_tiers(models, {"alexnet": "gold"})

        from repro.mapping import single_component_mapping

        def planner(workload, priorities):
            # Park everything on the LITTLE cluster: P will be far below
            # gold's 0.20 floor.
            return MappingDecision(
                single_component_mapping(workload, component=2))

        events = staggered_arrivals(models, period=50.0)
        timeline = run_dynamic_scenario(events, planner, platform, 100.0)
        report = evaluate_sla(timeline, assignment)
        assert not report.satisfied
        assert report.violations[0].tier == "gold"
        assert report.violation_fraction > 0

    def test_evaluate_sla_settle_window_exempts_start(self):
        platform = orange_pi_5()
        models = [get_model("alexnet")]
        assignment = assign_tiers(models, {"alexnet": "gold"})

        from repro.mapping import single_component_mapping

        def planner(workload, priorities):
            return MappingDecision(
                single_component_mapping(workload, component=2))

        events = staggered_arrivals(models, period=50.0)
        timeline = run_dynamic_scenario(events, planner, platform, 100.0)
        full = evaluate_sla(timeline, assignment)
        exempt = evaluate_sla(timeline, assignment, settle_seconds=100.0)
        assert full.violation_seconds > 0
        assert exempt.violation_seconds == 0.0
        assert exempt.satisfied

    def test_sla_tier_ladder_is_ordered(self):
        assert GOLD.priority > SILVER.priority > BRONZE.priority
        assert GOLD.min_potential > SILVER.min_potential > BRONZE.min_potential
