"""Unit tests for the nn module system and optimisers."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, nn, optim


def rng():
    return np.random.default_rng(11)


class TestModuleSystem:
    def test_parameter_discovery_nested(self):
        g = rng()
        model = nn.Sequential(nn.Linear(4, 8, g), nn.ReLU(), nn.Linear(8, 2, g))
        params = model.parameters()
        # 2 linears x (weight + bias)
        assert len(params) == 4

    def test_parameter_discovery_in_dict_and_list(self):
        g = rng()

        class Holder(nn.Module):
            def __init__(self):
                super().__init__()
                self.items = [nn.Linear(2, 2, g), nn.Linear(2, 2, g)]
                self.named = {"a": nn.Linear(2, 2, g)}

        assert len(Holder().parameters()) == 6

    def test_no_duplicate_parameters(self):
        g = rng()

        class Shared(nn.Module):
            def __init__(self):
                super().__init__()
                layer = nn.Linear(2, 2, g)
                self.a = layer
                self.b = layer

        assert len(Shared().parameters()) == 2

    def test_train_eval_propagates(self):
        g = rng()
        model = nn.Sequential(nn.Linear(2, 2, g), nn.BatchNorm2d(2))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_num_parameters(self):
        g = rng()
        layer = nn.Linear(3, 5, g)
        assert layer.num_parameters() == 3 * 5 + 5

    def test_state_roundtrip(self):
        g = rng()
        a = nn.Linear(3, 3, g)
        b = nn.Linear(3, 3, g)
        b.load_arrays(a.state_arrays())
        x = np.ones((1, 3))
        np.testing.assert_allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_load_arrays_validates(self):
        g = rng()
        layer = nn.Linear(3, 3, g)
        with pytest.raises(ValueError):
            layer.load_arrays([np.zeros((3, 3))])  # missing bias
        with pytest.raises(ValueError):
            layer.load_arrays([np.zeros((2, 2)), np.zeros(3)])

    def test_zero_grad(self):
        g = rng()
        layer = nn.Linear(2, 1, g)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes(self):
        layer = nn.Linear(4, 7, rng())
        out = layer(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 7)

    def test_linear_batched_3d(self):
        layer = nn.Linear(4, 7, rng())
        out = layer(Tensor(np.zeros((2, 5, 4))))
        assert out.shape == (2, 5, 7)

    def test_linear_gradcheck(self):
        g = rng()
        layer = nn.Linear(3, 2, g)
        x = Tensor(g.normal(size=(4, 3)), requires_grad=True)
        check_gradients(
            lambda: layer(x).sum(), [x, layer.weight, layer.bias], rtol=1e-3
        )

    def test_conv2d_module_shapes(self):
        layer = nn.Conv2d(3, 8, 3, rng(), stride=2, padding=1)
        out = layer(Tensor(np.zeros((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_depthwise_module_shapes(self):
        layer = nn.DepthwiseConv2d(5, 3, rng(), padding=1)
        out = layer(Tensor(np.zeros((2, 5, 6, 6))))
        assert out.shape == (2, 5, 6, 6)

    def test_conv1d_module_shapes(self):
        layer = nn.Conv1d(4, 6, 3, rng(), padding=1)
        out = layer(Tensor(np.zeros((2, 4, 10))))
        assert out.shape == (2, 6, 10)

    def test_mlp_forward(self):
        mlp = nn.MLP([4, 8, 2], rng())
        out = mlp(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 2)


class TestNorms:
    def test_batchnorm2d_normalises(self):
        g = rng()
        bn = nn.BatchNorm2d(3)
        x = Tensor(g.normal(3.0, 2.0, size=(8, 3, 4, 4)))
        out = bn(x)
        assert abs(out.data.mean()) < 1e-6
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_batchnorm2d_running_stats_used_in_eval(self):
        g = rng()
        bn = nn.BatchNorm2d(2)
        for _ in range(50):
            bn(Tensor(g.normal(5.0, 1.0, size=(16, 2, 3, 3))))
        bn.eval()
        out = bn(Tensor(np.full((1, 2, 3, 3), 5.0)))
        # mean input equals running mean => output ~ beta = 0
        assert np.abs(out.data).max() < 0.2

    def test_batchnorm1d_normalises(self):
        g = rng()
        bn = nn.BatchNorm1d(4)
        out = bn(Tensor(g.normal(-2.0, 3.0, size=(16, 4, 7))))
        assert abs(out.data.mean()) < 1e-6

    def test_layernorm_rows(self):
        g = rng()
        ln = nn.LayerNorm(6)
        out = ln(Tensor(g.normal(2.0, 4.0, size=(5, 6))))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(5), atol=1e-6)

    def test_batchnorm_gradcheck(self):
        g = rng()
        bn = nn.BatchNorm2d(2)
        x = Tensor(g.normal(size=(3, 2, 2, 2)), requires_grad=True)
        check_gradients(
            lambda: bn(x).sum(), [x, bn.gamma, bn.beta], rtol=1e-3, atol=1e-5
        )


class TestAttention:
    def test_self_attention_preserves_shape(self):
        attn = nn.SelfAttention2d(4, rng())
        x = Tensor(np.random.default_rng(3).normal(size=(2, 4, 3, 5)))
        out = attn(x)
        assert out.shape == (2, 4, 3, 5)

    def test_self_attention_zero_gate_is_identity(self):
        attn = nn.SelfAttention2d(4, rng())
        x = Tensor(np.random.default_rng(3).normal(size=(1, 4, 3, 3)))
        np.testing.assert_allclose(attn(x).data, x.data)  # gate initialised to 0

    def test_self_attention_gradcheck(self):
        g = rng()
        attn = nn.SelfAttention2d(2, g)
        attn.gate.data[:] = 0.5
        x = Tensor(g.normal(size=(1, 2, 2, 2)), requires_grad=True)
        check_gradients(lambda: attn(x).sum(), [x], rtol=1e-3, atol=1e-5)

    def test_linear_attention_shapes(self):
        attn = nn.LinearAttention(8, 4, rng(), head_dim=6)
        x = Tensor(np.zeros((2, 10, 8)))
        out = attn(x)
        assert out.shape == (2, 10, 4)

    def test_linear_attention_gradcheck(self):
        g = rng()
        attn = nn.LinearAttention(3, 2, g, head_dim=3)
        x = Tensor(g.normal(size=(1, 4, 3)), requires_grad=True)
        check_gradients(lambda: attn(x).sum(), [x], rtol=1e-3, atol=1e-5)


class TestOptim:
    def _quadratic_problem(self):
        g = rng()
        target = g.normal(size=(4,))
        p = nn.Parameter(np.zeros(4))
        return p, target

    def test_sgd_converges(self):
        p, target = self._quadratic_problem()
        opt = optim.SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = ((p - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        p, target = self._quadratic_problem()
        opt = optim.SGD([p], lr=0.05, momentum=0.9)
        for _ in range(200):
            opt.zero_grad()
            ((p - Tensor(target)) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_adam_converges(self):
        p, target = self._quadratic_problem()
        opt = optim.Adam([p], lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            ((p - Tensor(target)) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_weight_decay_shrinks(self):
        p = nn.Parameter(np.full(3, 10.0))
        opt = optim.SGD([p], lr=0.1, weight_decay=0.5)
        for _ in range(100):
            opt.zero_grad()
            (p * 0.0).sum().backward()  # zero task gradient
            opt.step()
        assert np.abs(p.data).max() < 1.0

    def test_clip_grad_norm(self):
        p = nn.Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        pre = optim.clip_grad_norm([p], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_cosine_schedule_endpoints(self):
        p = nn.Parameter(np.zeros(1))
        opt = optim.Adam([p], lr=1.0)
        sched = optim.CosineSchedule(opt, lr_max=1.0, lr_min=0.1, steps=10)
        first = sched.step()
        assert first == pytest.approx(1.0)
        for _ in range(10):
            last = sched.step()
        assert last == pytest.approx(0.1, abs=1e-6)

    def test_adam_skips_none_grads(self):
        p = nn.Parameter(np.ones(2))
        opt = optim.Adam([p], lr=0.1)
        opt.step()  # no backward called; should be a no-op
        np.testing.assert_allclose(p.data, np.ones(2))
