"""Unit tests for the bench-history tooling (benchmarks/record_bench.py).

The recorder is a script, not a package module, so it is loaded by file
path; only the pure pieces (regression flagging, history tailing) are
tested — the measurement run itself is exercised by ``make bench``.
"""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_record_bench():
    spec = importlib.util.spec_from_file_location(
        "record_bench", REPO_ROOT / "benchmarks" / "record_bench.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def row(mean):
    return {"mean_s": mean, "stddev_s": 0.0, "ops_per_s": 1.0 / mean,
            "rounds": 10}


class TestFlagRegressions:
    def test_flags_guarded_row_over_threshold(self):
        rb = _load_record_bench()
        flags = rb.flag_regressions(
            {"test_bench_serve_replan[warm]": row(1.0e-4)},
            {"test_bench_serve_replan[warm]": row(1.4e-4)})
        assert len(flags) == 1
        assert "test_bench_serve_replan[warm]" in flags[0]
        assert "+40%" in flags[0]

    def test_within_threshold_not_flagged(self):
        rb = _load_record_bench()
        flags = rb.flag_regressions(
            {"test_bench_serve_replan[full]": row(1.0e-2)},
            {"test_bench_serve_replan[full]": row(1.2e-2)})
        assert flags == []

    def test_unguarded_rows_ignored(self):
        rb = _load_record_bench()
        flags = rb.flag_regressions(
            {"test_bench_simulator_solve": row(1.0e-2)},
            {"test_bench_simulator_solve": row(9.0e-2)})
        assert flags == []

    def test_new_and_removed_rows_skipped(self):
        rb = _load_record_bench()
        flags = rb.flag_regressions(
            {"test_bench_serve_replan[cache]": row(1.0e-6)},
            {"test_bench_serve_replan[brand_new]": row(5.0e-6)})
        assert flags == []

    def test_scale_rows_guarded(self):
        """The streaming-scale sweep is a guarded hot path: a silent
        super-linear slip in the million-session rows must flag."""
        rb = _load_record_bench()
        assert "test_bench_serve_scale[" in rb.GUARDED_PREFIXES
        flags = rb.flag_regressions(
            {"test_bench_serve_scale[1e5]": row(6.0)},
            {"test_bench_serve_scale[1e5]": row(9.0)})
        assert len(flags) == 1
        assert "test_bench_serve_scale[1e5]" in flags[0]

    def test_speedups_never_flagged(self):
        rb = _load_record_bench()
        flags = rb.flag_regressions(
            {"test_bench_serve_replan[warm]": row(2.0e-4)},
            {"test_bench_serve_replan[warm]": row(1.0e-4)})
        assert flags == []


class TestGitSha:
    def test_stamps_short_sha_in_a_checkout(self):
        """The repo under test is a git checkout, so the stamp resolves."""
        rb = _load_record_bench()
        sha = rb.git_sha()
        assert sha is not None
        assert 4 <= len(sha) <= 40
        assert all(c in "0123456789abcdef" for c in sha)

    def test_non_git_directory_returns_none(self, tmp_path):
        """A tarball export (no .git anywhere up the tree) must stamp
        nothing rather than crash the history append."""
        rb = _load_record_bench()
        # tmp_path may live under a git-controlled tree on some CI
        # machines; guard the assumption instead of asserting blindly.
        import subprocess
        probe = subprocess.run(["git", "rev-parse", "--git-dir"],
                               cwd=tmp_path, capture_output=True)
        if probe.returncode == 0:
            return
        assert rb.git_sha(tmp_path) is None

    def test_obs_bench_guarded(self):
        """The recorder-overhead rows are a guarded hot path."""
        rb = _load_record_bench()
        assert "test_bench_serve_obs[" in rb.GUARDED_PREFIXES
        flags = rb.flag_regressions(
            {"test_bench_serve_obs[on]": row(1.0)},
            {"test_bench_serve_obs[on]": row(1.5)})
        assert len(flags) == 1

    def test_closed_loop_benches_guarded(self):
        """The fine-tune and pressure-feedback rows are guarded hot
        paths."""
        rb = _load_record_bench()
        assert "test_bench_finetune[" in rb.GUARDED_PREFIXES
        assert "test_bench_fleet_feedback[" in rb.GUARDED_PREFIXES
        flags = rb.flag_regressions(
            {"test_bench_finetune[epoch]": row(1.0),
             "test_bench_fleet_feedback[rounds2]": row(2.0)},
            {"test_bench_finetune[epoch]": row(1.4),
             "test_bench_fleet_feedback[rounds2]": row(2.2)})
        assert len(flags) == 1 and "finetune" in flags[0]

    def test_fleet_energy_bench_guarded(self):
        """The power-governor dispatch rows are a guarded hot path."""
        rb = _load_record_bench()
        assert "test_bench_fleet_energy[" in rb.GUARDED_PREFIXES
        flags = rb.flag_regressions(
            {"test_bench_fleet_energy[cap_on]": row(1.0),
             "test_bench_fleet_energy[cap_off]": row(0.5)},
            {"test_bench_fleet_energy[cap_on]": row(1.6),
             "test_bench_fleet_energy[cap_off]": row(0.5)})
        assert len(flags) == 1 and "cap_on" in flags[0]

    def test_solver_backend_benches_guarded(self):
        """The per-backend solve-batch sweep is a guarded hot path: a
        silent slowdown of the compiled rows would erase the backend's
        whole reason to exist."""
        rb = _load_record_bench()
        assert "test_bench_simulator_solve_batch[" in rb.GUARDED_PREFIXES
        flags = rb.flag_regressions(
            {"test_bench_simulator_solve_batch[16]": row(0.010),
             "test_bench_simulator_solve_batch[compiled-16]": row(0.001)},
            {"test_bench_simulator_solve_batch[16]": row(0.010),
             "test_bench_simulator_solve_batch[compiled-16]": row(0.002)})
        assert len(flags) == 1 and "compiled-16" in flags[0]


class TestLastHistoryEntry:
    def test_reads_final_line(self, tmp_path):
        rb = _load_record_bench()
        path = tmp_path / "hist.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"date": "2026-01-01"}) + "\n")
            fh.write(json.dumps({"date": "2026-02-01"}) + "\n")
        assert rb.last_history_entry(path)["date"] == "2026-02-01"

    def test_missing_or_empty_file(self, tmp_path):
        rb = _load_record_bench()
        assert rb.last_history_entry(tmp_path / "none.jsonl") is None
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n")
        assert rb.last_history_entry(empty) is None

    def test_repo_history_parses_with_guarded_rows(self):
        """The committed history must stay consumable by the flagger."""
        rb = _load_record_bench()
        entry = rb.last_history_entry(REPO_ROOT / "BENCH_history.jsonl")
        assert entry is not None
        assert any(name.startswith("test_bench_serve_replan[")
                   for name in entry["benchmarks"])
        # Self-comparison is the identity: nothing flags.
        assert rb.flag_regressions(entry["benchmarks"],
                                   entry["benchmarks"]) == []
