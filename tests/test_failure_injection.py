"""Failure injection: RankMap's behaviour when its learned parts misbehave.

The paper's "no starvation regardless of the workload" claim leans on the
estimator being right.  These tests feed the manager broken predictors —
noisy, adversarial, constant — and check which guarantees survive, and
that the board-validation hardening (re-measuring top-k candidates before
deployment) restores the starvation guarantee under estimator failure.
"""

import numpy as np
import pytest

from repro.core import OraclePredictor, RankMap, RankMapConfig, RatePredictor
from repro.hw import ComputeComponent, Platform, TransferLink, orange_pi_5
from repro.hw.component import default_efficiency
from repro.search import MCTSConfig
from repro.sim import simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()
FAST_MCTS = MCTSConfig(iterations=30, rollouts_per_leaf=3)


def wl(*names):
    return [get_model(n) for n in names]


class NoisyPredictor(RatePredictor):
    """Oracle rates corrupted by heavy multiplicative noise."""

    def __init__(self, platform, noise=1.0, seed=0):
        self._oracle = OraclePredictor(platform)
        self._noise = noise
        self._rng = np.random.default_rng(seed)

    def predict(self, workload, mappings):
        rates = self._oracle.predict(workload, mappings)
        jitter = self._rng.lognormal(0.0, self._noise, size=rates.shape)
        return rates * jitter

    @property
    def board_latency_per_eval(self):
        return 0.04


class AdversarialPredictor(RatePredictor):
    """Worst case: claims every mapping serves every DNN generously.

    The search degenerates to (seeded) arbitrary choice; whatever it
    returns looks qualified.  Only board validation can catch this.
    """

    def __init__(self, claimed_rate=25.0):
        self._claimed = claimed_rate

    def predict(self, workload, mappings):
        return np.full((len(mappings), len(workload)), self._claimed)

    @property
    def board_latency_per_eval(self):
        return 0.04


class ZeroPredictor(RatePredictor):
    """Claims every mapping starves everything."""

    def predict(self, workload, mappings):
        return np.zeros((len(mappings), len(workload)))

    @property
    def board_latency_per_eval(self):
        return 0.04


class TestNoisyEstimator:
    def test_moderate_noise_keeps_everyone_alive(self):
        workload = wl("alexnet", "squeezenet", "mobilenet")
        manager = RankMap(
            PLATFORM, NoisyPredictor(PLATFORM, noise=0.3),
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS,
                          board_validation_top_k=4),
        )
        decision = manager.plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        assert np.all(result.potentials > 0.02)

    def test_heavy_noise_with_validation_still_no_starvation(self):
        workload = wl("alexnet", "squeezenet", "resnet50")
        manager = RankMap(
            PLATFORM, NoisyPredictor(PLATFORM, noise=1.5),
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS,
                          board_validation_top_k=6),
        )
        decision = manager.plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        assert np.all(result.potentials > 0.02)


class TestAdversarialEstimator:
    def test_board_validation_beats_adversarial_predictor(self):
        """With validation on, the deployed mapping is chosen by measured
        reward, so a lying predictor cannot plant a starving mapping."""
        workload = wl("alexnet", "squeezenet", "mobilenet")
        validated = RankMap(
            PLATFORM, AdversarialPredictor(),
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS,
                          board_validation_top_k=8),
        )
        decision = validated.plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        assert np.all(result.potentials > 0.02)

    def test_validation_improves_on_blind_trust(self):
        """Measured reward of the validated plan is at least the blind
        plan's (same search seed): validation can only help."""
        workload = wl("alexnet", "squeezenet", "resnet50")
        blind = RankMap(
            PLATFORM, AdversarialPredictor(),
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS),
        )
        validated = RankMap(
            PLATFORM, AdversarialPredictor(),
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS,
                          board_validation_top_k=8),
        )
        blind_t = simulate(workload, blind.plan(workload).mapping,
                           PLATFORM).average_throughput
        validated_t = simulate(workload, validated.plan(workload).mapping,
                               PLATFORM).average_throughput
        assert validated_t >= blind_t * 0.95

    def test_validation_cost_appears_in_decision_latency(self):
        workload = wl("alexnet", "squeezenet")
        config = RankMapConfig(mode="dynamic", mcts=FAST_MCTS,
                               board_validation_top_k=5,
                               board_measurement_window_s=2.0)
        manager = RankMap(PLATFORM, AdversarialPredictor(), config)
        with_k = manager.plan(workload).decision_seconds
        blind = RankMap(PLATFORM, AdversarialPredictor(),
                        RankMapConfig(mode="dynamic", mcts=FAST_MCTS))
        without_k = blind.plan(workload).decision_seconds
        assert with_k >= without_k + 2.0  # at least one extra window


class TestSaturatedValidation:
    def test_all_disqualified_candidates_pick_max_margin(self):
        """When every validated candidate measures disqualified, the
        deployed mapping is the least-starving one, not blind trust."""
        workload = wl("squeezenet_v2", "inception_v4", "resnet50", "vgg16",
                      "densenet169")
        manager = RankMap(
            PLATFORM, AdversarialPredictor(),
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS,
                          board_validation_top_k=8),
        )
        decision = manager.plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        # The saturated 5-heavy-DNN workload may not clear the floors, but
        # the margin fallback must keep every DNN observably alive.
        assert np.all(result.potentials > 0.01)


class TestZeroEstimator:
    def test_relaxation_path_still_returns_valid_mapping(self):
        """Everything predicted starved: thresholds relax, search still
        returns a structurally valid mapping."""
        workload = wl("alexnet", "squeezenet")
        manager = RankMap(
            PLATFORM, ZeroPredictor(),
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS,
                          threshold_relaxations=2),
        )
        decision = manager.plan(workload)
        decision.mapping.validate_against(workload, PLATFORM.num_components)

    def test_zero_predictor_with_validation_recovers(self):
        workload = wl("alexnet", "squeezenet")
        manager = RankMap(
            PLATFORM, ZeroPredictor(),
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS,
                          board_validation_top_k=8),
        )
        decision = manager.plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        assert np.all(result.potentials > 0.02)


def _two_component_platform() -> Platform:
    """The Orange Pi with its LITTLE cluster offline (failure scenario)."""
    base = orange_pi_5()
    return Platform(name="orange_pi_5_degraded",
                    components=base.components[:2], link=base.link)


class TestDegradedPlatform:
    def test_manager_plans_on_two_components(self):
        platform = _two_component_platform()
        workload = wl("alexnet", "squeezenet")
        manager = RankMap(platform, OraclePredictor(platform),
                          RankMapConfig(mode="dynamic", mcts=FAST_MCTS))
        decision = manager.plan(workload)
        decision.mapping.validate_against(workload, 2)
        result = simulate(workload, decision.mapping, platform)
        assert np.all(result.rates > 0)

    def test_single_component_platform_degenerates_to_baseline(self):
        base = orange_pi_5()
        platform = Platform(name="gpu_only",
                            components=base.components[:1], link=base.link)
        workload = wl("alexnet",)
        manager = RankMap(platform, OraclePredictor(platform),
                          RankMapConfig(mode="dynamic", mcts=FAST_MCTS))
        decision = manager.plan(workload)
        assert decision.mapping.components_used() == {0}

    def test_mapping_for_wrong_platform_rejected(self):
        platform = _two_component_platform()
        workload = wl("alexnet",)
        manager = RankMap(PLATFORM, OraclePredictor(PLATFORM),
                          RankMapConfig(mode="dynamic", mcts=FAST_MCTS))
        decision = manager.plan(workload)
        if 2 in decision.mapping.components_used():
            with pytest.raises(ValueError):
                decision.mapping.validate_against(workload, 2)


class TestPredictorContract:
    def test_estimator_capacity_guard(self):
        """EstimatorPredictor refuses workloads beyond its slot capacity."""
        from repro.core import EstimatorPredictor
        from repro.estimator import EstimatorConfig, ThroughputEstimator
        from repro.vqvae import EmbeddingCache, LayerVQVAE

        config = EstimatorConfig()
        estimator = ThroughputEstimator(np.random.default_rng(0), config)
        embedder = EmbeddingCache(LayerVQVAE(np.random.default_rng(0)))
        predictor = EstimatorPredictor(estimator, embedder)
        too_many = [get_model(n) for n in
                    ("alexnet", "vgg16", "resnet50", "squeezenet",
                     "mobilenet", "shufflenet")][: config.max_dnns + 1]
        from repro.mapping import gpu_only_mapping

        with pytest.raises(ValueError, match="exceeds estimator capacity"):
            predictor.predict(too_many, [gpu_only_mapping(too_many)])
