"""Unit tests for stage demands, the contention solver, and the simulator."""

import numpy as np
import pytest

from repro.hw import orange_pi_5, solo_throughput
from repro.mapping import Mapping, gpu_only_mapping, random_partition_mapping
from repro.sim import compute_stage_demands, simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()


def wl(*names):
    return [get_model(n) for n in names]


class TestStageDemands:
    def test_single_stage_demand_equals_model_latency(self):
        workload = wl("alexnet")
        demands = compute_stage_demands(workload, gpu_only_mapping(workload),
                                        PLATFORM)
        assert len(demands) == 1
        assert demands[0].seconds_per_inference == pytest.approx(
            1.0 / solo_throughput(workload[0], PLATFORM.gpu)
        )
        assert demands[0].num_kernels == workload[0].num_layers

    def test_split_adds_transfer_cost(self):
        workload = wl("alexnet")
        n = workload[0].num_blocks
        split = Mapping((tuple([0] * (n // 2) + [1] * (n - n // 2)),))
        demands = compute_stage_demands(workload, split, PLATFORM)
        assert len(demands) == 2
        whole = compute_stage_demands(workload, gpu_only_mapping(workload),
                                      PLATFORM)[0].seconds_per_inference
        # Stage demands on their own components include a handoff charge.
        gpu_part = demands[0].seconds_per_inference
        assert demands[1].seconds_per_inference > 0
        assert gpu_part < whole  # only half the blocks

    def test_same_component_split_has_no_transfer(self):
        workload = wl("alexnet")
        n = workload[0].num_blocks
        merged = compute_stage_demands(workload, gpu_only_mapping(workload),
                                       PLATFORM)
        # Same component for all blocks collapses to one stage regardless of
        # how the assignment tuple is written.
        again = compute_stage_demands(
            workload, Mapping((tuple([0] * n),)), PLATFORM
        )
        assert len(again) == len(merged) == 1

    def test_kernel_counts_per_stage(self):
        workload = wl("squeezenet_v2")
        n = workload[0].num_blocks
        split = Mapping((tuple([0] * 1 + [1] * (n - 1)),))
        demands = compute_stage_demands(workload, split, PLATFORM)
        assert sum(d.num_kernels for d in demands) == workload[0].num_layers


class TestSolverInvariants:
    def test_solo_dnn_reaches_ideal(self):
        workload = wl("resnet50")
        result = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        assert result.rates[0] == pytest.approx(result.ideal_rates[0])
        assert result.potentials[0] == pytest.approx(1.0)

    def test_rates_positive_and_finite(self):
        workload = wl("squeezenet_v2", "inception_v4", "resnet50", "vgg16")
        rng = np.random.default_rng(5)
        for _ in range(25):
            m = random_partition_mapping(workload, 3, rng)
            result = simulate(workload, m, PLATFORM)
            assert np.isfinite(result.rates).all()
            assert (result.rates > 0).all()

    def test_component_utilisation_bounded(self):
        workload = wl("squeezenet_v2", "inception_v4", "resnet50", "vgg16")
        rng = np.random.default_rng(6)
        for _ in range(25):
            m = random_partition_mapping(workload, 3, rng)
            result = simulate(workload, m, PLATFORM)
            assert (result.solution.component_utilisation <= 1.0 + 1e-6).all()

    def test_solver_converges(self):
        workload = wl("squeezenet_v2", "inception_v4", "resnet50", "vgg16")
        rng = np.random.default_rng(7)
        for _ in range(25):
            m = random_partition_mapping(workload, 3, rng)
            result = simulate(workload, m, PLATFORM)
            assert result.solution.converged

    def test_contention_slows_everyone(self):
        solo = simulate(wl("resnet50"), gpu_only_mapping(wl("resnet50")),
                        PLATFORM).rates[0]
        duo_wl = wl("resnet50", "vgg16")
        duo = simulate(duo_wl, gpu_only_mapping(duo_wl), PLATFORM)
        assert duo.rates[0] < solo

    def test_adding_a_dnn_never_helps_existing(self):
        three = wl("squeezenet_v2", "resnet50", "mobilenet")
        four = three + wl("vgg16")
        r3 = simulate(three, gpu_only_mapping(three), PLATFORM)
        r4 = simulate(four, gpu_only_mapping(four), PLATFORM)
        assert (r4.rates[:3] <= r3.rates * 1.01).all()

    def test_spreading_beats_stacking_on_gpu(self):
        workload = wl("squeezenet_v2", "resnet50")
        stacked = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        spread = simulate(
            workload,
            Mapping((
                tuple([1] * workload[0].num_blocks),
                tuple([0] * workload[1].num_blocks),
            )),
            PLATFORM,
        )
        assert spread.average_throughput > stacked.average_throughput

    def test_empty_workload_mapping_rejected(self):
        with pytest.raises(ValueError):
            simulate([], Mapping(((0,),)), PLATFORM)


class TestSimResult:
    def test_average_throughput_is_paper_T(self):
        workload = wl("squeezenet_v2", "resnet50")
        result = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        assert result.average_throughput == pytest.approx(result.rates.mean())

    def test_potentials_definition(self):
        workload = wl("squeezenet_v2", "resnet50")
        result = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        np.testing.assert_allclose(result.potentials,
                                   result.rates / result.ideal_rates)

    def test_names_preserved(self):
        workload = wl("squeezenet_v2", "resnet50")
        result = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        assert result.workload_names == ("squeezenet_v2", "resnet50")
        assert "squeezenet_v2" in repr(result)


class TestPaperMotivationShapes:
    """Sec. II key observations, reproduced on the simulated board."""

    @pytest.fixture(scope="class")
    def motivation(self):
        workload = wl("squeezenet_v2", "inception_v4", "resnet50", "vgg16")
        base = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        rng = np.random.default_rng(0)
        results = [
            simulate(workload, random_partition_mapping(workload, 3, rng),
                     PLATFORM)
            for _ in range(150)
        ]
        return workload, base, results

    def test_most_random_mappings_beat_baseline(self, motivation):
        _, base, results = motivation
        frac = np.mean([
            r.average_throughput > base.average_throughput for r in results
        ])
        assert frac > 0.75  # paper: 91 %

    def test_significant_starvation_fraction(self, motivation):
        _, _, results = motivation
        frac = np.mean([(r.potentials < 0.02).any() for r in results])
        assert 0.15 < frac < 0.6  # paper: 30.2 %

    def test_inception_v4_has_lowest_mean_potential(self, motivation):
        workload, _, results = motivation
        mean_p = np.mean([r.potentials for r in results], axis=0)
        by_name = dict(zip([m.name for m in workload], mean_p))
        assert by_name["inception_v4"] == min(by_name.values())
        assert by_name["inception_v4"] < 0.2  # paper: ~0.1

    def test_majority_of_dnns_below_p02(self, motivation):
        _, _, results = motivation
        all_p = np.concatenate([r.potentials for r in results])
        assert (all_p <= 0.2).mean() > 0.6  # paper: > 60 %

    def test_high_max_p_costs_other_dnns(self, motivation):
        """Paper obs. 4: beyond P >= 0.6 somebody underperforms."""
        _, _, results = motivation
        mins = [r.potentials.min() for r in results
                if r.potentials.max() >= 0.6]
        assert mins and float(np.mean(mins)) < 0.1
