"""Unit tests for the estimator fine-tuning loop (repro.estimator.finetune).

Covers the deterministic ingestion buffer (dedup, max-merge, bounded
reservoir), the warm-start ``finetune`` pass, the generation-writing
``refresh_artifact`` lineage chain, the ``ExperimentContext`` wiring and
the offline CLI.  The bit-identity *properties* (ingestion order, worker
count, v1→v2 round-trip) live in
``tests/property/test_finetune_properties.py``.
"""

import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.estimator import (
    ArtifactLineage,
    EstimatorConfig,
    FinetuneBuffer,
    FinetuneConfig,
    ThroughputEstimator,
    artifact_hash,
    finetune,
    latest_artifact_generation,
    load_estimator_artifact,
    refresh_artifact,
    save_estimator_artifact,
    segment_rows_to_samples,
)
from repro.hw import jetson_class, orange_pi_5
from repro.obs import TelemetrySnapshot, write_trace
from repro.obs.recorder import SegmentUsage
from repro.vqvae import LayerVQVAE
from repro.zoo import get_model

REPO_ROOT = Path(__file__).resolve().parents[1]

TINY_CFG = EstimatorConfig(max_dnns=4, stem_channels=4,
                           block_channels=(4, 4, 4), attn_dim=4,
                           decoder_dim=8)

FAST_FT = FinetuneConfig(epochs=1, batch_size=4)


def seg(names, rate=1.0, duration=5.0):
    """A synthetic export_segments row over real zoo models."""
    return {
        "workload": list(names),
        "assignments": [[0] * get_model(n).num_blocks for n in names],
        "rates": [float(rate)] * len(names),
        "duration_s": float(duration),
    }


@pytest.fixture()
def base_artifact(tmp_path):
    """A tiny base artifact for the Orange Pi 5 under a temp family."""
    estimator = ThroughputEstimator(np.random.default_rng(3), TINY_CFG)
    vqvae = LayerVQVAE(np.random.default_rng(4))
    path = tmp_path / "estimator.pkl"
    save_estimator_artifact(path, estimator, vqvae, orange_pi_5(),
                            val_l2=0.5, val_spearman=0.8)
    return path


class TestFinetuneBuffer:
    def test_ingest_counts_new_distinct_segments(self):
        buf = FinetuneBuffer()
        assert buf.ingest([seg(("alexnet",)), seg(("squeezenet",))]) == 2
        assert buf.ingest([seg(("alexnet",))]) == 0
        assert len(buf) == 2 and buf.seen == 2 and buf.dropped == 0

    def test_duplicate_durations_merge_with_max(self):
        buf = FinetuneBuffer()
        buf.ingest([seg(("alexnet",), duration=3.0)])
        buf.ingest([seg(("alexnet",), duration=9.0)])
        buf.ingest([seg(("alexnet",), duration=5.0)])
        (row,) = buf.rows()
        assert row["duration_s"] == 9.0

    def test_rows_sorted_and_order_invariant(self):
        rows = [seg(("mobilenet_v2",)), seg(("alexnet",)),
                seg(("squeezenet", "alexnet"), rate=2.0)]
        forward, backward = FinetuneBuffer(), FinetuneBuffer()
        forward.ingest(rows)
        backward.ingest(reversed(rows))
        assert forward.rows() == backward.rows()
        workloads = [tuple(r["workload"]) for r in forward.rows()]
        assert workloads == sorted(workloads)

    def test_reservoir_bound_is_order_independent(self):
        rows = [seg((name,)) for name in
                ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")]
        forward, backward = FinetuneBuffer(max_rows=2), FinetuneBuffer(max_rows=2)
        forward.ingest(rows)
        backward.ingest(reversed(rows))
        assert len(forward) == 2
        assert forward.dropped == 2 and forward.seen == 4
        assert forward.rows() == backward.rows()

    def test_accepts_raw_segment_usage_records(self):
        usage = SegmentUsage(("alexnet",), ((0,) * 8,), (1.5,), 2.0)
        buf = FinetuneBuffer()
        assert buf.ingest([usage]) == 1

    def test_malformed_row_raises(self):
        with pytest.raises(ValueError, match="malformed segment row"):
            FinetuneBuffer().ingest([{"workload": ["alexnet"]}])

    def test_misaligned_row_raises(self):
        bad = seg(("alexnet", "squeezenet"))
        bad["rates"] = [1.0]
        with pytest.raises(ValueError, match="must align"):
            FinetuneBuffer().ingest([bad])

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError, match="max_rows"):
            FinetuneBuffer(max_rows=0)


class TestSegmentRowsToSamples:
    def test_dedup_and_sort(self):
        rows = [seg(("squeezenet",)), seg(("alexnet",)),
                seg(("squeezenet",))]
        samples = segment_rows_to_samples(rows, TINY_CFG)
        assert [s.names for s in samples] == [("alexnet",), ("squeezenet",)]

    def test_oversized_workload_rejected(self):
        row = seg(("alexnet", "squeezenet", "mobilenet_v2", "shufflenet",
                   "resnet50"))
        with pytest.raises(ValueError, match="max_dnns"):
            segment_rows_to_samples([row], TINY_CFG)


class TestFinetune:
    def test_zero_rows_is_a_noop(self, base_artifact):
        artifact = load_estimator_artifact(base_artifact, orange_pi_5())
        before = [a.copy() for a in artifact.estimator.state_arrays()]
        report = finetune(artifact, [], FAST_FT)
        assert report.rows == 0 and report.steps == 0
        for a, b in zip(before, artifact.estimator.state_arrays()):
            np.testing.assert_array_equal(a, b)

    def test_rows_move_the_weights(self, base_artifact):
        artifact = load_estimator_artifact(base_artifact, orange_pi_5())
        before = [a.copy() for a in artifact.estimator.state_arrays()]
        report = finetune(artifact, [seg(("alexnet",)),
                                     seg(("squeezenet",), rate=2.0)],
                          FAST_FT)
        assert report.rows == 2 and report.steps >= 1
        assert len(report.train_loss) == FAST_FT.epochs
        assert any(not np.array_equal(a, b) for a, b in
                   zip(before, artifact.estimator.state_arrays()))
        assert not artifact.estimator.training  # left in eval mode


class TestRefreshArtifact:
    def test_missing_family_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            refresh_artifact(tmp_path / "nope.pkl", [seg(("alexnet",))],
                             orange_pi_5(), FAST_FT)

    def test_writes_generation_with_lineage(self, base_artifact):
        parent_hash = artifact_hash(base_artifact)
        out, report = refresh_artifact(
            base_artifact, [seg(("alexnet",)), seg(("squeezenet",))],
            orange_pi_5(), FAST_FT)
        assert out.name == "estimator.gen1.pkl"
        child = load_estimator_artifact(out, orange_pi_5())
        assert child.lineage == ArtifactLineage(
            parent_hash=parent_hash, segment_count=2, finetune_epoch=1)
        assert report.rows == 2
        # Base validation quality is carried over, not recomputed.
        assert child.val_l2 == pytest.approx(0.5)
        assert child.val_spearman == pytest.approx(0.8)

    def test_generations_chain(self, base_artifact):
        out1, _ = refresh_artifact(base_artifact, [seg(("alexnet",))],
                                   orange_pi_5(), FAST_FT)
        out2, _ = refresh_artifact(base_artifact, [seg(("squeezenet",))],
                                   orange_pi_5(), FAST_FT)
        assert out2.name == "estimator.gen2.pkl"
        child = load_estimator_artifact(out2, orange_pi_5())
        assert child.lineage.parent_hash == artifact_hash(out1)
        assert child.lineage.finetune_epoch == 2
        assert latest_artifact_generation(base_artifact) == 2

    def test_platform_mismatch_raises_not_downgrades(self, base_artifact):
        """Fine-tuning the wrong board's weights would poison every later
        generation — the refresh path has no oracle fallback."""
        with pytest.raises(ValueError, match="trained for platform"):
            refresh_artifact(base_artifact, [seg(("alexnet",))],
                             jetson_class(), FAST_FT)
        assert latest_artifact_generation(base_artifact) == 0


def _load_cli():
    spec = importlib.util.spec_from_file_location(
        "finetune_estimator", REPO_ROOT / "tools" / "finetune_estimator.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _trace_with_segments(path, rows):
    snapshot = TelemetrySnapshot(
        where="test", max_spans=64, counters=(), gauges=(), histograms=(),
        spans=(), span_stats=(),
        segments=tuple(SegmentUsage(tuple(r["workload"]),
                                    tuple(tuple(a) for a in r["assignments"]),
                                    tuple(r["rates"]), r["duration_s"])
                       for r in rows))
    write_trace(snapshot, path)
    return path


class TestFinetuneCLI:
    def test_refreshes_a_generation_from_traces(self, base_artifact,
                                                tmp_path, capsys):
        cli = _load_cli()
        trace = _trace_with_segments(tmp_path / "trace.jsonl",
                                     [seg(("alexnet",)),
                                      seg(("squeezenet",), rate=2.0)])
        status = cli.main([str(base_artifact), str(trace),
                           "--platform", "orange_pi_5", "--epochs", "1",
                           "--batch-size", "4"])
        assert status == 0
        assert latest_artifact_generation(base_artifact) == 1
        out = capsys.readouterr().out
        assert "generation 1" in out

    def test_empty_traces_fail_with_message(self, base_artifact, tmp_path,
                                            capsys):
        cli = _load_cli()
        trace = _trace_with_segments(tmp_path / "empty.jsonl", [])
        status = cli.main([str(base_artifact), str(trace)])
        assert status == 1
        assert "no segments" in capsys.readouterr().err
        assert latest_artifact_generation(base_artifact) == 0

    def test_corrupt_trace_fails_cleanly(self, base_artifact, tmp_path,
                                         capsys):
        cli = _load_cli()
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        status = cli.main([str(base_artifact), str(bad)])
        assert status == 1
        assert "error:" in capsys.readouterr().err


class TestContextRefresh:
    def test_refresh_estimator_requires_telemetry(self, tmp_path):
        from repro.experiments import ExperimentContext

        class Blind:
            telemetry = None

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        with pytest.raises(ValueError, match="observe=True"):
            ctx.refresh_estimator([Blind()])
