"""Unit tests for the NetBuilder DSL."""

import pytest

from repro.zoo.builder import NetBuilder
from repro.zoo.layers import Activation, LayerType


def fresh(shape=(3, 32, 32)):
    return NetBuilder("test", shape)


class TestShapeTracking:
    def test_conv_same_padding_preserves_spatial(self):
        b = fresh().block("b").conv(8, 3)
        assert b.shape == (8, 32, 32)

    def test_conv_stride_halves(self):
        b = fresh().block("b").conv(8, 3, stride=2)
        assert b.shape == (8, 16, 16)

    def test_conv_rectangular_kernel(self):
        b = fresh().block("b").conv(8, (1, 7))
        assert b.shape == (8, 32, 32)
        layer = b.build().layers()[0]
        assert layer.weight_shape[2:] == (1, 7)
        assert layer.macs == 1 * 7 * 3 * 8 * 32 * 32

    def test_valid_padding(self):
        b = fresh().block("b").conv(8, 3, pad=0)
        assert b.shape == (8, 30, 30)

    def test_dwconv_preserves_channels(self):
        b = fresh((16, 10, 10)).block("b").dwconv(3, stride=2)
        assert b.shape == (16, 5, 5)

    def test_pwconv(self):
        b = fresh((16, 10, 10)).block("b").pwconv(4)
        assert b.shape == (4, 10, 10)

    def test_pools(self):
        b = fresh((8, 16, 16)).block("b").maxpool(2).avgpool(2)
        assert b.shape == (8, 4, 4)

    def test_global_pool(self):
        b = fresh((8, 16, 16)).block("b").global_pool()
        assert b.shape == (8, 1, 1)

    def test_fc_flattens(self):
        b = fresh((8, 4, 4)).block("b").fc(10)
        assert b.shape == (10, 1, 1)
        layer = b.build().layers()[0]
        assert layer.weight_shape[1] == 8 * 4 * 4

    def test_upsample(self):
        b = fresh((8, 4, 4)).block("b").upsample(2)
        assert b.shape == (8, 8, 8)

    def test_negative_output_size_raises(self):
        with pytest.raises(ValueError):
            fresh((3, 2, 2)).block("b").conv(8, 5, pad=0)


class TestBranching:
    def test_branches_concat_channels(self):
        b = fresh((8, 16, 16)).block("b").branches(
            lambda nb: nb.pwconv(4),
            lambda nb: nb.conv(6, 3),
        )
        assert b.shape == (10, 16, 16)
        layers = b.build().layers()
        assert layers[-1].op_type == LayerType.CONCAT

    def test_branches_spatial_mismatch_raises(self):
        with pytest.raises(ValueError):
            fresh((8, 16, 16)).block("b").branches(
                lambda nb: nb.pwconv(4),
                lambda nb: nb.conv(4, 3, stride=2),
            )

    def test_residual_identity(self):
        b = fresh((8, 16, 16)).block("b").residual(
            lambda nb: nb.conv(8, 3, act=Activation.NONE)
        )
        assert b.shape == (8, 16, 16)
        assert b.build().layers()[-1].op_type == LayerType.ADD

    def test_residual_projection(self):
        b = fresh((8, 16, 16)).block("b").residual(
            lambda nb: nb.conv(16, 3, stride=2, act=Activation.NONE),
            lambda nb: nb.conv(16, 1, stride=2, pad=0, act=Activation.NONE),
        )
        assert b.shape == (16, 8, 8)

    def test_residual_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            fresh((8, 16, 16)).block("b").residual(lambda nb: nb.pwconv(4))

    def test_residual_projection_mismatch_raises(self):
        with pytest.raises(ValueError):
            fresh((8, 16, 16)).block("b").residual(
                lambda nb: nb.conv(16, 3, act=Activation.NONE),
                lambda nb: nb.pwconv(4),
            )

    def test_concat_with_adds_channels(self):
        b = fresh((8, 16, 16)).block("b").concat_with(24)
        assert b.shape == (32, 16, 16)

    def test_set_shape_restores(self):
        b = fresh((8, 16, 16)).block("b")
        b.conv(4, 3)
        b.set_shape((8, 16, 16))
        assert b.shape == (8, 16, 16)


class TestBlockManagement:
    def test_layers_require_block(self):
        with pytest.raises(RuntimeError):
            fresh().conv(8, 3)

    def test_empty_block_raises(self):
        b = fresh()
        b.block("empty")
        with pytest.raises(ValueError):
            b.block("next")

    def test_empty_model_raises(self):
        with pytest.raises(ValueError):
            fresh().build()

    def test_block_names_preserved(self):
        b = fresh()
        b.block("alpha").conv(4, 3)
        b.block("beta").conv(4, 3)
        model = b.build()
        assert [blk.name for blk in model.blocks] == ["alpha", "beta"]

    def test_layer_indices_are_global_and_increasing(self):
        b = fresh()
        b.block("a").conv(4, 3).conv(4, 3)
        b.block("c").conv(4, 3)
        indices = [l.index for l in b.build().layers()]
        assert indices == [0, 1, 2]

    def test_groups_validation(self):
        with pytest.raises(ValueError):
            fresh((6, 8, 8)).block("b").conv(8, 3, groups=4)

    def test_channel_shuffle_validation(self):
        with pytest.raises(ValueError):
            fresh((7, 8, 8)).block("b").channel_shuffle(3)
