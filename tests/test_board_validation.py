"""Tests for MCTS top-candidate tracking and RankMap board validation."""

import numpy as np
import pytest

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.mapping import Mapping
from repro.search import MCTS, MCTSConfig, MCTSStats
from repro.sim import simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()


class TestTopCandidates:
    def test_record_sorted_and_bounded(self):
        stats = MCTSStats()
        for i in range(12):
            stats.record_candidate(float(i), Mapping(((i % 3,),)), keep=5)
        assert len(stats.top_candidates) <= 5
        rewards = [r for r, _ in stats.top_candidates]
        assert rewards == sorted(rewards, reverse=True)

    def test_duplicates_ignored(self):
        stats = MCTSStats()
        m = Mapping(((0, 1),))
        stats.record_candidate(1.0, m)
        stats.record_candidate(2.0, Mapping(((0, 1),)))
        assert len(stats.top_candidates) == 1

    def test_search_populates_candidates(self):
        workload = [get_model("alexnet")]

        def evaluate(mappings):
            return np.array([
                float(sum(m.assignments[0])) for m in mappings
            ])

        mcts = MCTS(workload, 3, evaluate,
                    MCTSConfig(iterations=10, rollouts_per_leaf=2))
        _, stats = mcts.search()
        assert stats.top_candidates
        best_tracked = stats.top_candidates[0][0]
        assert best_tracked == pytest.approx(stats.best_reward)


class TestBoardValidation:
    def _noisy_predictor(self):
        """An oracle corrupted with multiplicative noise — a stand-in for
        an imperfect estimator."""
        oracle = OraclePredictor(PLATFORM)
        rng = np.random.default_rng(0)

        class Noisy(OraclePredictor):
            def predict(self, workload, mappings):
                rates = oracle.predict(workload, mappings)
                noise = rng.lognormal(0.0, 0.6, size=rates.shape)
                return rates * noise

        return Noisy(PLATFORM)

    def test_validation_never_starves_with_noisy_predictor(self):
        workload = [get_model(n) for n in
                    ("squeezenet_v2", "inception_v4", "resnet50")]
        manager = RankMap(
            PLATFORM, self._noisy_predictor(),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=40, rollouts_per_leaf=4),
                          board_validation_top_k=6),
        )
        decision = manager.plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        assert (result.potentials >= 0.02).all()

    def test_validation_adds_measurement_windows(self):
        workload = [get_model("alexnet"), get_model("mobilenet")]
        base_cfg = RankMapConfig(
            mode="dynamic",
            mcts=MCTSConfig(iterations=15, rollouts_per_leaf=2))
        valid_cfg = RankMapConfig(
            mode="dynamic",
            mcts=MCTSConfig(iterations=15, rollouts_per_leaf=2),
            board_validation_top_k=3, board_measurement_window_s=2.0)
        plain = RankMap(PLATFORM, OraclePredictor(PLATFORM), base_cfg)
        validated = RankMap(PLATFORM, OraclePredictor(PLATFORM), valid_cfg)
        t_plain = plain.plan(workload).decision_seconds
        t_valid = validated.plan(workload).decision_seconds
        assert t_valid >= t_plain + 2.0  # at least one extra window

    def test_zero_k_disables_validation(self):
        workload = [get_model("alexnet")]
        manager = RankMap(
            PLATFORM, OraclePredictor(PLATFORM),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=5, rollouts_per_leaf=2),
                          board_validation_top_k=0),
        )
        decision = manager.plan(workload)
        expected = manager.last_stats.evaluations * 2.0
        assert decision.decision_seconds == pytest.approx(expected)
