"""Docs-subsystem guards: intra-repo links + public-API docstring coverage.

Two cheap tier-1 checks keep the new ``docs/`` subsystem honest:

* every relative link in the repo's markdown (README, ROADMAP, docs/*)
  must resolve to a real file — the same check ``make docs-check`` runs
  via ``tools/check_links.py``;
* every public symbol of ``repro.serve``, ``repro.serve.fleet``,
  ``repro.runner``, ``repro.estimator`` and ``repro.core`` (modules,
  classes, functions, public methods and properties) must carry a real
  docstring — a pydocstyle-lite gate for the subsystems the docs
  describe.
"""

import importlib
import importlib.util
import inspect
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The documented public surface the docstring gate covers.
API_MODULES = (
    "repro.serve",
    "repro.serve.admission",
    "repro.serve.loop",
    "repro.serve.reference",
    "repro.serve.preempt",
    "repro.serve.replan",
    "repro.serve.report",
    "repro.serve.fleet",
    "repro.serve.fleet.routing",
    "repro.serve.fleet.dispatch",
    "repro.serve.fleet.report",
    "repro.serve.fleet.power",
    "repro.runner",
    "repro.runner.runner",
    "repro.runner.scenario",
    "repro.estimator",
    "repro.estimator.artifact",
    "repro.estimator.dataset",
    "repro.estimator.finetune",
    "repro.estimator.metrics",
    "repro.estimator.model",
    "repro.estimator.train",
    "repro.core",
    "repro.core.manager",
    "repro.core.power",
    "repro.core.predictor",
    "repro.core.priorities",
    "repro.obs",
    "repro.obs.registry",
    "repro.obs.recorder",
    "repro.obs.export",
    "repro.sim.backend",
)


def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ------------------------------------------------------------------ links
class TestDocsLinks:
    def test_docs_exist(self):
        assert (REPO_ROOT / "docs" / "architecture.md").is_file()
        assert (REPO_ROOT / "docs" / "serving.md").is_file()

    def test_intra_repo_links_resolve(self):
        checker = _load_check_links()
        errors = checker.check_links(REPO_ROOT)
        assert errors == [], "broken markdown links:\n" + "\n".join(errors)

    def test_checker_flags_broken_link(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "README.md").write_text(
            "[ok](docs/a.md) and [broken](docs/missing.md)")
        (tmp_path / "docs" / "a.md").write_text("hello")
        checker = _load_check_links()
        errors = checker.check_links(tmp_path)
        assert len(errors) == 1 and "missing.md" in errors[0]

    def test_checker_ignores_external_links(self, tmp_path):
        (tmp_path / "README.md").write_text(
            "[web](https://example.com) [mail](mailto:a@b.c) [anchor](#x)")
        checker = _load_check_links()
        assert checker.check_links(tmp_path) == []


# ------------------------------------------------------- docstring gate
def _missing_member_docs(cls: type, qualname: str) -> list[str]:
    missing = []
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            doc = member.fget.__doc__ if member.fget else None
        elif isinstance(member, (staticmethod, classmethod)):
            doc = member.__func__.__doc__
        elif inspect.isfunction(member):
            doc = member.__doc__
        else:
            continue                      # class attrs / dataclass fields
        if not doc or not doc.strip():
            missing.append(f"{qualname}.{name}")
    return missing


@pytest.mark.parametrize("module_name", API_MODULES)
def test_public_api_has_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing: list[str] = []
    if not (module.__doc__ or "").strip():
        missing.append(module_name)
    for name in getattr(module, "__all__", ()):
        obj = getattr(module, name)
        qualname = f"{module_name}.{name}"
        if isinstance(obj, type):
            doc = (obj.__doc__ or "").strip()
            # A dataclass without an explicit docstring gets its signature
            # as __doc__ — that is not documentation.
            if not doc or doc.startswith(f"{obj.__name__}("):
                missing.append(qualname)
            missing.extend(_missing_member_docs(obj, qualname))
        elif inspect.isroutine(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(qualname)
        # Constants (tier names, rosters, type aliases) carry their docs
        # in the module docstring or `#:` comments; nothing to assert.
    assert missing == [], \
        "public symbols missing docstrings:\n" + "\n".join(missing)
