"""Tests for the model zoo: registry, architecture fidelity, vectorisation."""

import numpy as np
import pytest

from repro.zoo import (
    ALL_MODELS,
    LAYER_VECTOR_DIM,
    MODEL_POOL,
    get_model,
    list_models,
    pool_models,
    vectorize_layer,
    vectorize_model,
)
from repro.zoo.layers import LayerType

# Published MAC counts (multiply-accumulates, in G) for single-image
# inference; our reconstructions must land within a factor of ~1.6.
PUBLISHED_GMACS = {
    "alexnet": 0.72,
    "vgg16": 15.5,
    "vgg19": 19.6,
    "resnet50": 4.1,
    "resnext50": 4.3,
    "densenet121": 2.87,
    "densenet169": 3.4,
    "googlenet": 1.5,
    "inception_v3": 5.7,
    "inception_v4": 12.3,
    "mobilenet": 0.57,
    "mobilenet_v2": 0.3,
    "shufflenet": 0.14,
    "squeezenet": 0.84,
    "squeezenet_v2": 0.35,
    "efficientnet_b0": 0.39,
    "efficientnet_b1": 0.7,
    "efficientnet_b2": 1.0,
    "yolo_v3": 32.8,
}


class TestRegistry:
    def test_pool_has_23_models(self):
        assert len(MODEL_POOL) == 23

    def test_fig8_model_available_but_not_in_pool(self):
        assert "inception_resnet_v1" in ALL_MODELS
        assert "inception_resnet_v1" not in MODEL_POOL

    def test_unknown_model_raises_with_hint(self):
        with pytest.raises(KeyError, match="available"):
            get_model("resnet101")

    def test_get_model_is_memoised(self):
        assert get_model("alexnet") is get_model("alexnet")

    def test_list_models_sorted(self):
        assert list_models() == sorted(list_models())

    def test_pool_models_builds_all(self):
        assert len(pool_models()) == 23


@pytest.mark.parametrize("name", ALL_MODELS)
class TestEveryModel:
    def test_builds_with_blocks_and_layers(self, name):
        m = get_model(name)
        assert m.num_blocks >= 2
        assert m.num_layers >= m.num_blocks
        assert m.macs > 0
        assert m.params > 0

    def test_first_layer_consumes_model_input(self, name):
        m = get_model(name)
        assert m.layers()[0].ifm == m.input_shape

    def test_layer_indices_strictly_increasing(self, name):
        indices = [l.index for l in get_model(name).layers()]
        assert indices == list(range(len(indices)))

    def test_vectorises_to_eq1_dims(self, name):
        mat = vectorize_model(get_model(name))
        assert mat.shape == (get_model(name).num_layers, LAYER_VECTOR_DIM)
        assert np.isfinite(mat).all()


class TestPaperPartitionCounts:
    """Sec. IV-E quotes the solution-space size 3^(8+20+18+18) for the
    workload {AlexNet, MobileNet, ResNet-50, ShuffleNet}."""

    @pytest.mark.parametrize("name,blocks", [
        ("alexnet", 8), ("mobilenet", 20), ("resnet50", 18), ("shufflenet", 18),
    ])
    def test_block_counts_match_paper(self, name, blocks):
        assert get_model(name).num_blocks == blocks

    def test_solution_space_size_example(self):
        total = sum(get_model(n).num_blocks
                    for n in ("alexnet", "mobilenet", "resnet50", "shufflenet"))
        assert total == 8 + 20 + 18 + 18


class TestArchitectureFidelity:
    @pytest.mark.parametrize("name,published", sorted(PUBLISHED_GMACS.items()))
    def test_macs_close_to_published(self, name, published):
        ours = get_model(name).macs / 1e9
        assert published / 1.6 <= ours <= published * 1.6, (
            f"{name}: {ours:.2f}G vs published {published}G"
        )

    def test_inception_v4_is_heaviest_classifier(self):
        heavy = get_model("inception_v4").macs
        for other in ("resnet50", "googlenet", "mobilenet", "squeezenet_v2"):
            assert heavy > get_model(other).macs

    def test_squeezenet_v2_cheaper_than_v1(self):
        assert get_model("squeezenet_v2").macs < get_model("squeezenet").macs

    def test_vgg19_deeper_and_heavier_than_vgg16(self):
        assert get_model("vgg19").macs > get_model("vgg16").macs
        assert get_model("vgg19").num_blocks > get_model("vgg16").num_blocks

    def test_efficientnet_scaling_monotone(self):
        b0, b1, b2 = (get_model(f"efficientnet_b{i}").macs for i in range(3))
        assert b0 < b1 < b2

    def test_resnext_uses_grouped_convs(self):
        types = {l.op_type for l in get_model("resnext50").layers()}
        assert LayerType.GROUP_CONV in types

    def test_shufflenet_has_shuffle_layers(self):
        types = {l.op_type for l in get_model("shufflenet").layers()}
        assert LayerType.CHANNEL_SHUFFLE in types

    def test_detection_models_have_heads(self):
        for name in ("ssd_mobilenet", "yolo_v3"):
            heads = [l for l in get_model(name).layers()
                     if l.op_type == LayerType.DETECT_HEAD]
            assert len(heads) >= 3, name

    def test_yolo_has_upsampling_routes(self):
        types = [l.op_type for l in get_model("yolo_v3").layers()]
        assert types.count(LayerType.UPSAMPLE) == 2

    def test_densenet_grows_channels_via_concat(self):
        m = get_model("densenet121")
        concats = [l for l in m.layers() if l.op_type == LayerType.CONCAT]
        assert len(concats) == 6 + 12 + 24 + 16


class TestVectorize:
    def test_raw_vector_fields(self):
        layer = get_model("alexnet").layers()[0]
        vec = vectorize_layer(layer)
        assert vec[0] == layer.index
        assert vec[1] == layer.op_type
        assert tuple(vec[3:6]) == layer.ifm
        assert tuple(vec[7:10]) == layer.ofm
        assert vec[14] == layer.biases
        assert vec[15] == layer.activation
        assert vec[20] == layer.stride[0]

    def test_minibatch_fields_are_one(self):
        vec = vectorize_layer(get_model("alexnet").layers()[0])
        assert vec[2] == 1.0 and vec[6] == 1.0

    def test_normalised_magnitudes_order_one(self):
        mat = vectorize_model(get_model("vgg16"))
        assert np.abs(mat).max() < 5.0

    def test_normalisation_is_deterministic(self):
        a = vectorize_model(get_model("resnet50"))
        b = vectorize_model(get_model("resnet50"))
        np.testing.assert_array_equal(a, b)

    def test_distinct_models_have_distinct_encodings(self):
        a = vectorize_model(get_model("squeezenet"))
        b = vectorize_model(get_model("squeezenet_v2"))
        assert a.shape != b.shape or not np.allclose(a, b)
