"""Unit tests for the grouped-residual VQ and the layer VQ-VAE."""

import numpy as np
import pytest

from repro.vqvae import (
    EMBEDDING_DIM,
    EmbeddingCache,
    GroupedResidualVQ,
    LayerVQVAE,
    VQVAETrainConfig,
    train_vqvae,
)
from repro.zoo import get_model, vectorize_model


class TestGroupedResidualVQ:
    def make(self, **kw):
        base = dict(dim=8, groups=2, stages=2, codebook_size=16,
                    rng=np.random.default_rng(0))
        base.update(kw)
        return GroupedResidualVQ(**base)

    def test_dim_must_divide_groups(self):
        with pytest.raises(ValueError):
            GroupedResidualVQ(dim=7, groups=2)

    def test_quantize_shapes(self):
        vq = self.make()
        x = np.random.default_rng(1).normal(size=(10, 8))
        q, codes = vq.quantize(x)
        assert q.shape == (10, 8)
        assert codes.shape == (10, 2, 2)

    def test_wrong_input_shape_rejected(self):
        with pytest.raises(ValueError):
            self.make().quantize(np.zeros((4, 5)))

    def test_quantized_uses_codebook_entries(self):
        vq = self.make(stages=1)
        x = np.random.default_rng(1).normal(size=(5, 8))
        q, codes = vq.quantize(x)
        for row in range(5):
            for g in range(2):
                entry = vq.codebooks[g][0][codes[row, g, 0]]
                np.testing.assert_allclose(q[row, g * 4 : (g + 1) * 4], entry)

    def test_residual_stages_reduce_error(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(200, 8))
        vq1 = self.make(stages=1)
        vq2 = self.make(stages=3)
        for _ in range(30):
            vq1.quantize(x, update=True)
            vq2.quantize(x, update=True)
        e1 = ((vq1.quantize(x)[0] - x) ** 2).mean()
        e2 = ((vq2.quantize(x)[0] - x) ** 2).mean()
        assert e2 < e1

    def test_ema_training_reduces_error(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(300, 8)) * 2.0
        vq = self.make()
        before = ((vq.quantize(x)[0] - x) ** 2).mean()
        for _ in range(50):
            vq.quantize(x, update=True)
        after = ((vq.quantize(x)[0] - x) ** 2).mean()
        assert after < before

    def test_quantize_without_update_is_pure(self):
        vq = self.make()
        x = np.random.default_rng(4).normal(size=(20, 8))
        books_before = [b.copy() for g in vq.codebooks for b in g]
        vq.quantize(x, update=False)
        books_after = [b for g in vq.codebooks for b in g]
        for a, b in zip(books_before, books_after):
            np.testing.assert_array_equal(a, b)

    def test_deterministic_codes(self):
        vq = self.make()
        x = np.random.default_rng(5).normal(size=(6, 8))
        _, c1 = vq.quantize(x)
        _, c2 = vq.quantize(x)
        np.testing.assert_array_equal(c1, c2)

    def test_codebook_usage_in_unit_interval(self):
        vq = self.make()
        assert 0.0 <= vq.codebook_usage() <= 1.0

    def test_state_roundtrip(self):
        vq = self.make()
        x = np.random.default_rng(6).normal(size=(50, 8))
        for _ in range(5):
            vq.quantize(x, update=True)
        clone = self.make()
        clone.load_arrays(vq.state_arrays())
        q1, _ = vq.quantize(x)
        q2, _ = clone.quantize(x)
        np.testing.assert_allclose(q1, q2)

    def test_state_validation(self):
        with pytest.raises(ValueError):
            self.make().load_arrays([np.zeros((2, 2))])


class TestLayerVQVAE:
    def test_embed_model_shape(self):
        vqvae = LayerVQVAE(np.random.default_rng(0))
        model = get_model("alexnet")
        emb = vqvae.embed_model(model)
        assert emb.shape == (model.num_layers, EMBEDDING_DIM)

    def test_training_reduces_reconstruction(self):
        models = [get_model(n) for n in ("alexnet", "squeezenet_v2")]
        _, history = train_vqvae(models, VQVAETrainConfig(epochs=8))
        assert history[-1] < history[0] * 0.5

    def test_eval_mode_after_training(self):
        models = [get_model("alexnet")]
        vqvae, _ = train_vqvae(models, VQVAETrainConfig(epochs=1))
        assert not vqvae.training

    def test_loss_returns_scalar_and_float(self):
        vqvae = LayerVQVAE(np.random.default_rng(0))
        from repro.autodiff import Tensor

        features = Tensor(vectorize_model(get_model("alexnet")).T[None])
        total, recon = vqvae.loss(features)
        assert total.size == 1
        assert recon >= 0.0

    def test_distinct_layers_get_distinct_embeddings(self):
        models = [get_model(n) for n in ("alexnet", "vgg16")]
        vqvae, _ = train_vqvae(models, VQVAETrainConfig(epochs=8))
        emb = vqvae.embed_model(get_model("alexnet"))
        # conv1 vs fc8 must differ after compression.
        assert not np.allclose(emb[0], emb[-1])


class TestEmbeddingCache:
    def test_cache_hits_return_same_array(self):
        vqvae = LayerVQVAE(np.random.default_rng(0))
        cache = EmbeddingCache(vqvae)
        model = get_model("alexnet")
        assert cache.get(model) is cache.get(model)

    def test_for_workload_order(self):
        vqvae = LayerVQVAE(np.random.default_rng(0))
        cache = EmbeddingCache(vqvae)
        wl = [get_model("alexnet"), get_model("mobilenet")]
        embs = cache.for_workload(wl)
        assert embs[0].shape[0] == wl[0].num_layers
        assert embs[1].shape[0] == wl[1].num_layers
