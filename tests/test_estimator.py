"""Unit tests for the throughput estimator: model, dataset, training."""

import numpy as np
import pytest

from repro.estimator import (
    EstimatorConfig,
    EstimatorDataset,
    EstimatorTrainConfig,
    ThroughputEstimator,
    evaluate_estimator,
    generate_dataset,
    l2_loss,
    pairwise_ranking_accuracy,
    spearman_r,
    train_estimator,
)
from repro.hw import orange_pi_5
from repro.vqvae import EmbeddingCache, LayerVQVAE

PLATFORM = orange_pi_5()
SMALL_CFG = EstimatorConfig(max_dnns=3, max_layers=32, stem_channels=8,
                            block_channels=(8, 12, 16), attn_dim=8,
                            decoder_dim=12)


def small_model(seed=1):
    return ThroughputEstimator(np.random.default_rng(seed), SMALL_CFG)


def small_dataset(n=12, seed=0):
    rng = np.random.default_rng(seed)
    return generate_dataset(PLATFORM, rng, n, SMALL_CFG,
                            pool=("alexnet", "squeezenet_v2", "mobilenet"))


def embedder():
    return EmbeddingCache(LayerVQVAE(np.random.default_rng(0)))


class TestModel:
    def test_forward_shape(self):
        model = small_model()
        q = np.zeros((4, 3, 32, 48), np.float32)
        out = model.predict_log_rates(q)
        assert out.shape == (4, 3)

    def test_forward_rejects_wrong_shape(self):
        from repro.autodiff import Tensor

        with pytest.raises(ValueError):
            small_model()(Tensor(np.zeros((2, 3, 16, 48), np.float32)))

    def test_predict_rates_nonnegative(self):
        model = small_model()
        q = np.random.default_rng(0).normal(size=(2, 3, 32, 48)).astype(np.float32)
        assert (model.predict_rates(q) >= 0).all()

    def test_uses_float32(self):
        model = small_model()
        assert all(p.data.dtype == np.float32 for p in model.parameters())

    def test_parameter_count_reasonable(self):
        # The full-size default is a width-scaled version of the paper's
        # 3.7M-parameter network.
        full = ThroughputEstimator(np.random.default_rng(0))
        assert 50_000 < full.num_parameters() < 1_000_000

    def test_prediction_depends_on_placement(self):
        model = small_model()
        q0 = np.zeros((1, 3, 32, 48), np.float32)
        q1 = np.zeros((1, 3, 32, 48), np.float32)
        q0[0, 0, :10, 0:16] = 1.0   # layers on component 0
        q1[0, 0, :10, 32:48] = 1.0  # same layers on component 2
        assert not np.allclose(model.predict_log_rates(q0),
                               model.predict_log_rates(q1))

    def test_eval_mode_restored_after_predict(self):
        model = small_model()
        model.train()
        model.predict_log_rates(np.zeros((1, 3, 32, 48), np.float32))
        assert model.training


class TestDataset:
    def test_generate_respects_pool_and_size(self):
        ds = small_dataset(n=8)
        assert len(ds) == 8
        for s in ds.samples:
            assert 1 <= len(s.names) <= 3
            assert all(n in ("alexnet", "squeezenet_v2", "mobilenet")
                       for n in s.names)
            assert len(s.rates) == len(s.names)
            assert all(r > 0 for r in s.rates)

    def test_no_duplicate_models_in_sample(self):
        ds = small_dataset(n=20)
        for s in ds.samples:
            assert len(set(s.names)) == len(s.names)

    def test_split_disjoint_and_complete(self):
        ds = small_dataset(n=10)
        train, val = ds.split(0.3, np.random.default_rng(0))
        assert len(train) + len(val) == 10
        assert len(val) == 3

    def test_split_validates_fraction(self):
        ds = small_dataset(n=4)
        with pytest.raises(ValueError):
            ds.split(0.0, np.random.default_rng(0))

    def test_build_batch_shapes_and_mask(self):
        ds = small_dataset(n=6)
        q, y, mask = ds.build_batch([0, 1, 2], embedder())
        assert q.shape == (3, 3, 32, 48)
        assert y.shape == mask.shape == (3, 3)
        for row, idx in enumerate([0, 1, 2]):
            k = len(ds.samples[idx].names)
            assert mask[row, :k].all() and not mask[row, k:].any()
            np.testing.assert_allclose(
                y[row, :k], np.log1p(ds.samples[idx].rates), rtol=1e-6
            )

    def test_min_dnns_validated(self):
        with pytest.raises(ValueError):
            generate_dataset(PLATFORM, np.random.default_rng(0), 2,
                             SMALL_CFG, min_dnns=9)


class TestMetrics:
    def test_l2_loss_basic(self):
        assert l2_loss([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_l2_loss_masked(self):
        loss = l2_loss([1.0, 100.0], [1.0, 0.0], mask=[1.0, 0.0])
        assert loss == 0.0

    def test_l2_empty_mask_rejected(self):
        with pytest.raises(ValueError):
            l2_loss([1.0], [1.0], mask=[0.0])

    def test_spearman_monotone(self):
        assert spearman_r([1, 2, 3, 4], [10, 20, 40, 80]) == pytest.approx(1.0)

    def test_spearman_constant_is_zero(self):
        assert spearman_r([1, 1, 1], [1, 2, 3]) == 0.0

    def test_ranking_accuracy_perfect(self):
        rng = np.random.default_rng(0)
        x = np.arange(50.0)
        assert pairwise_ranking_accuracy(x, x, rng) == 1.0

    def test_ranking_accuracy_random_is_half(self):
        rng = np.random.default_rng(0)
        pred = rng.normal(size=500)
        target = rng.normal(size=500)
        assert abs(pairwise_ranking_accuracy(pred, target, rng) - 0.5) < 0.1


class TestTraining:
    def test_loss_decreases(self):
        ds = small_dataset(n=24, seed=3)
        model = small_model()
        report = train_estimator(
            model, ds, embedder(),
            EstimatorTrainConfig(epochs=4, batch_size=8, val_fraction=0.2),
        )
        assert report.train_loss[-1] < report.train_loss[0]
        assert len(report.val_loss) == 4
        assert np.isfinite(report.final_val_loss)

    def test_channel_shuffle_preserves_pairing(self):
        from repro.estimator.train import _shuffle_channels

        rng = np.random.default_rng(0)
        q = np.arange(2 * 3 * 4 * 6, dtype=np.float64).reshape(2, 3, 4, 6)
        y = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        q0, y0 = q.copy(), y.copy()
        _shuffle_channels(q, y, mask, rng)
        # Each (channel, target) pair must stay together.
        for row in range(2):
            for c in range(3):
                orig = int(np.where(y0[row] == y[row, c])[0][0])
                np.testing.assert_array_equal(q[row, c], q0[row, orig])

    def test_evaluate_returns_finite(self):
        ds = small_dataset(n=8)
        l2, rho = evaluate_estimator(small_model(), ds, embedder())
        assert np.isfinite(l2)
        assert -1.0 <= rho <= 1.0
