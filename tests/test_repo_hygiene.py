"""Repo hygiene gate: generated artifacts must never be tracked.

PR 8 accidentally committed 89 ``__pycache__/*.pyc`` files; this tier-1
test makes that class of mistake fail CI instead of slipping through
review.  It asks git for the tracked file list (the working tree will
legitimately contain bytecode), so it only runs inside a git checkout
and skips in tarball exports.
"""

import fnmatch
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Tracked paths matching any of these are generated artifacts, not source.
FORBIDDEN_PATTERNS = (
    "*/__pycache__/*",
    "__pycache__/*",
    "*.pyc",
    "*.pyo",
    "*/.pytest_cache/*",
    "*/.hypothesis/*",
    "*/.benchmarks/*",
    "*.so",
    "src/repro/sim/_build/*",
)


def _tracked_files():
    probe = subprocess.run(["git", "ls-files", "-z"], cwd=REPO_ROOT,
                           capture_output=True)
    if probe.returncode != 0:
        pytest.skip("not a git checkout (tarball export)")
    return [p for p in probe.stdout.decode().split("\0") if p]


def test_no_generated_artifacts_tracked():
    tracked = _tracked_files()
    assert tracked, "git ls-files returned nothing for a live checkout"
    offenders = sorted(
        path for path in tracked
        if any(fnmatch.fnmatch(path, pat) for pat in FORBIDDEN_PATTERNS))
    assert offenders == [], (
        f"{len(offenders)} generated file(s) are tracked by git "
        f"(e.g. {offenders[:5]}); git rm --cached them — .gitignore "
        f"already covers these patterns")


def test_gitignore_covers_cache_patterns():
    """The root .gitignore must keep covering the cache directories, so
    the artifacts this gate polices cannot re-enter the index by a plain
    ``git add .``."""
    gitignore = REPO_ROOT / ".gitignore"
    assert gitignore.is_file(), "root .gitignore is missing"
    rules = {line.strip() for line in gitignore.read_text().splitlines()}
    for required in ("__pycache__/", "*.pyc", ".pytest_cache/",
                     ".hypothesis/", ".benchmarks/",
                     "src/repro/sim/_build/"):
        assert required in rules, f".gitignore lost the {required!r} rule"
