"""Unit tests for the core Tensor autodiff machinery."""

import numpy as np
import pytest

from repro.autodiff import Tensor, check_gradients, no_grad


def rng():
    return np.random.default_rng(0)


class TestBasics:
    def test_scalar_add_backward(self):
        a = Tensor(2.0, requires_grad=True)
        b = Tensor(3.0, requires_grad=True)
        (a + b).backward()
        assert a.grad == 1.0
        assert b.grad == 1.0

    def test_mul_backward(self):
        a = Tensor(2.0, requires_grad=True)
        b = Tensor(3.0, requires_grad=True)
        (a * b).backward()
        assert a.grad == 3.0
        assert b.grad == 2.0

    def test_chain_rule(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * x + x) * 3.0  # y = 3x^2 + 3x, dy/dx = 6x + 3 = 15
        y.backward()
        assert x.grad == pytest.approx(15.0)

    def test_grad_accumulates_over_reuse(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x  # dy/dx = 2x via two paths
        y.backward()
        assert x.grad == pytest.approx(6.0)

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(1.0)
        with pytest.raises(RuntimeError):
            x.backward()

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3).detach()
        assert not y.requires_grad

    def test_no_grad_context(self):
        x = Tensor(2.0, requires_grad=True)
        with no_grad():
            y = x * 3
        assert not y.requires_grad

    def test_repr_and_props(self):
        x = Tensor(np.zeros((2, 3)), requires_grad=True)
        assert "requires_grad" in repr(x)
        assert x.shape == (2, 3)
        assert x.ndim == 2
        assert x.size == 6
        assert len(x) == 2

    def test_int_input_promoted_to_float(self):
        x = Tensor([1, 2, 3])
        assert x.dtype.kind == "f"


class TestBroadcasting:
    def test_add_broadcast_backward(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_mul_broadcast_scalar(self):
        a = Tensor(np.full((4,), 2.0), requires_grad=True)
        (a * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(4, 3.0))

    def test_keepdims_broadcast(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        mu = a.mean(axis=1, keepdims=True)
        (a - mu).sum().backward()
        np.testing.assert_allclose(a.grad, np.zeros((2, 3)), atol=1e-12)


class TestReductionsAndShapes:
    def test_sum_axis(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        a.sum(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3, 4)))

    def test_mean_grad_value(self):
        a = Tensor(np.ones((5,)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(5, 0.2))

    def test_var_matches_numpy(self):
        data = rng().normal(size=(4, 5))
        t = Tensor(data)
        np.testing.assert_allclose(t.var(axis=1).data, data.var(axis=1), rtol=1e-10)

    def test_max_gradient_single(self):
        a = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_max_gradient_ties_split(self):
        a = Tensor([2.0, 2.0], requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.5, 0.5])

    def test_reshape_roundtrip(self):
        a = Tensor(np.arange(12.0), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (12,)

    def test_transpose_grad(self):
        a = Tensor(rng().normal(size=(2, 3, 4)), requires_grad=True)
        (a.transpose(2, 0, 1) * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 2.0))

    def test_getitem_grad(self):
        a = Tensor(np.arange(10.0), requires_grad=True)
        a[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(a.grad, expected)

    def test_swapaxes(self):
        a = Tensor(np.zeros((2, 3)))
        assert a.swapaxes(0, 1).shape == (3, 2)


class TestMatmul:
    def test_2d_matmul_grads(self):
        g = rng()
        a = Tensor(g.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(g.normal(size=(4, 5)), requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_batched_matmul_grads(self):
        g = rng()
        a = Tensor(g.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(g.normal(size=(2, 4, 5)), requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_batched_times_2d(self):
        g = rng()
        a = Tensor(g.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(g.normal(size=(4, 5)), requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_vector_matmul(self):
        g = rng()
        a = Tensor(g.normal(size=(4,)), requires_grad=True)
        b = Tensor(g.normal(size=(4, 5)), requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vector_rhs(self):
        g = rng()
        a = Tensor(g.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(g.normal(size=(4,)), requires_grad=True)
        check_gradients(lambda: (a @ b).sum(), [a, b])


class TestElementwise:
    @pytest.mark.parametrize(
        "name",
        ["exp", "log", "sqrt", "relu", "sigmoid", "tanh", "gelu", "abs", "leaky_relu"],
    )
    def test_unary_gradcheck(self, name):
        g = rng()
        data = g.uniform(0.2, 2.0, size=(3, 4))  # positive domain for log/sqrt
        x = Tensor(data, requires_grad=True)
        check_gradients(lambda: getattr(x, name)().sum(), [x], rtol=1e-3, atol=1e-5)

    def test_pow_gradcheck(self):
        x = Tensor(rng().uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        check_gradients(lambda: (x**3).sum(), [x])

    def test_pow_rejects_tensor_exponent(self):
        x = Tensor([1.0])
        with pytest.raises(TypeError):
            x ** np.array([1.0, 2.0])

    def test_div_gradcheck(self):
        g = rng()
        a = Tensor(g.uniform(1, 2, size=(3,)), requires_grad=True)
        b = Tensor(g.uniform(1, 2, size=(3,)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_rsub_rdiv(self):
        x = Tensor([2.0], requires_grad=True)
        y = 1.0 - x
        z = 1.0 / x
        assert y.data[0] == pytest.approx(-1.0)
        assert z.data[0] == pytest.approx(0.5)
