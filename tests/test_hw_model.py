"""Unit tests for the hardware component / latency / platform model."""

import pytest

from repro.hw import (
    BIG,
    GPU,
    LITTLE,
    ComputeComponent,
    Platform,
    TransferLink,
    block_latency,
    default_efficiency,
    layer_latency,
    model_latency,
    orange_pi_5,
    solo_throughput,
)
from repro.zoo import get_model
from repro.zoo.layers import Activation, LayerSpec, LayerType


def make_component(**overrides) -> ComputeComponent:
    base = dict(
        name="test", kind="gpu", peak_macs_per_s=100e9,
        mem_bw_bytes_per_s=10e9, elem_ops_per_s=10e9,
        dispatch_overhead_s=1e-4,
        type_efficiency=default_efficiency(0.5, 0.3, 0.4),
        macs_half=1e6, channel_sat=16, sharing_bias=0.5,
        interference_alpha=0.5, interference_beta=1.0,
    )
    base.update(overrides)
    return ComputeComponent(**base)


def big_conv(macs_scale=1):
    c = 64 * macs_scale
    return LayerSpec(0, LayerType.CONV, (c, 32, 32), (c, 32, 32),
                     (c, c, 3, 3), c, Activation.RELU, (1, 1), (1, 1))


class TestComponent:
    def test_rejects_nonpositive_rates(self):
        with pytest.raises(ValueError):
            make_component(peak_macs_per_s=0)

    def test_rejects_bad_sharing_bias(self):
        with pytest.raises(ValueError):
            make_component(sharing_bias=1.5)

    def test_efficiency_lookup_with_default(self):
        comp = make_component()
        assert comp.efficiency_for(LayerType.CONV) == 0.5
        assert comp.efficiency_for(LayerType.LRN) == 0.5  # fallback

    def test_utilisation_increases_with_kernel_size(self):
        comp = make_component()
        small = comp.utilisation(10_000, 64, 64)
        large = comp.utilisation(100_000_000, 64, 64)
        assert small < large <= 1.0

    def test_utilisation_penalises_narrow_channels(self):
        comp = make_component(channel_sat=32)
        narrow = comp.utilisation(10_000_000, 4, 4)
        wide = comp.utilisation(10_000_000, 64, 64)
        assert narrow < wide

    def test_utilisation_floor(self):
        comp = make_component()
        assert comp.utilisation(1, 1, 1) >= 0.05

    def test_interference_monotone(self):
        comp = make_component()
        factors = [comp.interference_factor(n) for n in range(1, 6)]
        assert factors[0] == 1.0
        assert all(a < b for a, b in zip(factors, factors[1:]))


class TestLayerLatency:
    def test_dispatch_overhead_is_floor(self):
        comp = make_component(dispatch_overhead_s=5e-3)
        tiny = LayerSpec(0, LayerType.ADD, (1, 1, 1), (1, 1, 1),
                         (0, 0, 0, 0), 0, Activation.NONE, (0, 0), (1, 1))
        assert layer_latency(tiny, comp) >= 5e-3

    def test_compute_bound_layer_scales_with_peak(self):
        layer = big_conv()
        slow = layer_latency(layer, make_component(peak_macs_per_s=10e9))
        fast = layer_latency(layer, make_component(peak_macs_per_s=1000e9))
        assert slow > fast

    def test_memory_bound_layer_scales_with_bandwidth(self):
        # FC with enormous weights is memory bound.
        fc = LayerSpec(0, LayerType.FC, (4096, 1, 1), (4096, 1, 1),
                       (4096, 4096, 1, 1), 4096, Activation.NONE, (0, 0), (1, 1))
        slow = layer_latency(fc, make_component(mem_bw_bytes_per_s=1e9))
        fast = layer_latency(fc, make_component(mem_bw_bytes_per_s=100e9))
        assert slow > 2 * fast

    def test_block_latency_sums_layers(self):
        comp = make_component()
        model = get_model("alexnet")
        blk = model.blocks[0]
        assert block_latency(blk, comp) == pytest.approx(
            sum(layer_latency(l, comp) for l in blk.layers)
        )

    def test_model_latency_sums_blocks(self):
        comp = make_component()
        model = get_model("alexnet")
        assert model_latency(model, comp) == pytest.approx(
            sum(block_latency(b, comp) for b in model.blocks)
        )

    def test_solo_throughput_inverse(self):
        comp = make_component()
        model = get_model("alexnet")
        assert solo_throughput(model, comp) == pytest.approx(
            1.0 / model_latency(model, comp)
        )


class TestTransferLink:
    def test_transfer_time(self):
        link = TransferLink(bandwidth_bytes_per_s=1e9, latency_s=1e-3)
        assert link.transfer_time(1_000_000) == pytest.approx(2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferLink(bandwidth_bytes_per_s=0, latency_s=0)
        with pytest.raises(ValueError):
            TransferLink(bandwidth_bytes_per_s=1e9, latency_s=-1)


class TestPlatform:
    def test_orange_pi_structure(self):
        p = orange_pi_5()
        assert p.num_components == 3
        assert p.components[GPU].kind == "gpu"
        assert p.components[BIG].kind == "big"
        assert p.components[LITTLE].kind == "little"
        assert p.gpu is p.components[0]

    def test_index_of(self):
        p = orange_pi_5()
        assert p.index_of("big") == BIG
        with pytest.raises(KeyError):
            p.index_of("npu")

    def test_duplicate_names_rejected(self):
        c = make_component()
        with pytest.raises(ValueError):
            Platform("bad", (c, c), TransferLink(1e9, 0))

    def test_empty_platform_rejected(self):
        with pytest.raises(ValueError):
            Platform("empty", (), TransferLink(1e9, 0))

    def test_ideal_throughput_uses_gpu(self):
        p = orange_pi_5()
        m = get_model("resnet50")
        assert p.ideal_throughput(m) == pytest.approx(
            solo_throughput(m, p.gpu)
        )
