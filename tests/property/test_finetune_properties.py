"""Property-based tests for the estimator fine-tuning closed loop.

The loop's determinism contract, swept over randomized segment sets
(derandomized, so runs are reproducible bit for bit):

* **Ingestion-order invariance** — fine-tuning the same artifact family
  on the same segments produces *bit-identical* ``.gen1`` files no
  matter what order the rows arrived in, because the
  :class:`~repro.estimator.FinetuneBuffer` canonicalizes (dedup + sort)
  before any gradient step.
* **Duplicate/zero no-ops** — re-ingesting rows the buffer has already
  seen changes nothing, and a zero-row ``finetune`` leaves every weight
  array untouched.
* **v1 → v2 round-trip** — rewriting a version-2 artifact as version 1
  (dropping lineage) must not change a single predicted rate.
* **Worker-count invariance** — the segment rows exported from an
  observed fleet's merged telemetry are equal with 1 and N workers, so
  the closed loop feeds the same rows regardless of parallelism.

Fine-tune passes run over the tiny estimator config (one epoch, batch
size four) so each hypothesis example costs a handful of steps.
"""

import pickle
import shutil

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimator import (EstimatorConfig, FinetuneBuffer, FinetuneConfig,
                             ThroughputEstimator, finetune,
                             load_estimator_artifact, refresh_artifact,
                             save_estimator_artifact)
from repro.hw import orange_pi_5
from repro.obs import export_segments
from repro.runner import DynamicScenario, FleetScenario, ScenarioRunner
from repro.vqvae import LayerVQVAE
from repro.zoo import get_model

PLATFORM = orange_pi_5()
POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")

TINY_CFG = EstimatorConfig(max_dnns=4, stem_channels=4,
                           block_channels=(4, 4, 4), attn_dim=4,
                           decoder_dim=8)
FAST_FT = FinetuneConfig(epochs=1, batch_size=4)


def _row(names, rate, duration):
    return {
        "workload": list(names),
        "assignments": [[0] * get_model(n).num_blocks for n in names],
        "rates": [float(rate)] * len(names),
        "duration_s": float(duration),
    }


row_st = st.builds(
    _row,
    names=st.lists(st.sampled_from(POOL), min_size=1, max_size=3,
                   unique=True),
    rate=st.sampled_from([0.5, 1.0, 2.0]),
    duration=st.floats(0.5, 60.0, allow_nan=False))

rows_st = st.lists(row_st, min_size=1, max_size=6)


def _write_base(path):
    estimator = ThroughputEstimator(np.random.default_rng(3), TINY_CFG)
    vqvae = LayerVQVAE(np.random.default_rng(4))
    save_estimator_artifact(path, estimator, vqvae, PLATFORM,
                            val_l2=0.5, val_spearman=0.8)


# -------------------------------------------------- ingestion-order identity
@settings(max_examples=8, deadline=None, derandomize=True)
@given(rows=rows_st, order_seed=st.integers(0, 1_000))
def test_refresh_bit_identical_regardless_of_row_order(tmp_path_factory,
                                                       rows, order_seed):
    base = tmp_path_factory.mktemp("ft") / "estimator.pkl"
    _write_base(base)
    perm = np.random.default_rng(order_seed).permutation(len(rows))
    shuffled = [rows[i] for i in perm]

    outs = []
    for ordering in (rows, shuffled):
        family = tmp_path_factory.mktemp("fam") / "estimator.pkl"
        shutil.copyfile(base, family)
        buffer = FinetuneBuffer()
        buffer.ingest(ordering)
        out, _ = refresh_artifact(family, buffer.rows(), PLATFORM,
                                  config=FAST_FT)
        outs.append(out.read_bytes())
    assert outs[0] == outs[1]


# ------------------------------------------------------ duplicate / zero rows
@settings(max_examples=20, deadline=None, derandomize=True)
@given(rows=rows_st, echo_seed=st.integers(0, 1_000))
def test_duplicate_ingestion_is_a_noop(rows, echo_seed):
    rng = np.random.default_rng(echo_seed)
    echoes = [rows[i] for i in rng.integers(0, len(rows), size=4)]
    once, twice = FinetuneBuffer(), FinetuneBuffer()
    once.ingest(rows)
    twice.ingest(rows)
    assert twice.ingest(echoes) == 0
    assert once.rows() == twice.rows()
    assert len(twice) == len(once)


@settings(max_examples=5, deadline=None, derandomize=True)
@given(seed=st.integers(0, 1_000))
def test_zero_rows_never_move_weights(tmp_path_factory, seed):
    path = tmp_path_factory.mktemp("ft") / "estimator.pkl"
    estimator = ThroughputEstimator(np.random.default_rng(seed), TINY_CFG)
    save_estimator_artifact(path, estimator, LayerVQVAE(
        np.random.default_rng(seed + 1)), PLATFORM)
    artifact = load_estimator_artifact(path, PLATFORM)
    before = [a.copy() for a in artifact.estimator.state_arrays()]
    report = finetune(artifact, [], FAST_FT)
    assert report.steps == 0
    for a, b in zip(before, artifact.estimator.state_arrays()):
        np.testing.assert_array_equal(a, b)


# ------------------------------------------------------- v1 → v2 round-trip
@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000), q_seed=st.integers(0, 10_000))
def test_v1_rewrite_preserves_predictions_exactly(tmp_path_factory, seed,
                                                  q_seed):
    base = tmp_path_factory.mktemp("v") / "estimator.pkl"
    estimator = ThroughputEstimator(np.random.default_rng(seed), TINY_CFG)
    save_estimator_artifact(base, estimator, LayerVQVAE(
        np.random.default_rng(seed + 1)), PLATFORM)
    payload = pickle.loads(base.read_bytes())
    payload["version"] = 1
    payload.pop("lineage")
    v1_path = base.with_name("v1.pkl")
    v1_path.write_bytes(pickle.dumps(payload))

    v2 = load_estimator_artifact(base, PLATFORM)
    v1 = load_estimator_artifact(v1_path, PLATFORM)
    cfg = TINY_CFG
    q = np.random.default_rng(q_seed).normal(size=(
        2, cfg.max_dnns, cfg.max_layers, cfg.width))
    np.testing.assert_array_equal(v1.estimator.predict_rates(q),
                                  v2.estimator.predict_rates(q))


# ------------------------------------------------- worker-count invariance
@settings(max_examples=4, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       routing=st.sampled_from(["least_loaded", "pressure_feedback"]))
def test_exported_rows_identical_across_worker_counts(seed, routing):
    """The fleet's merged telemetry exports the same segment rows with 1
    and 2 workers, so fine-tuning ingests identical data either way."""
    def fleet():
        nodes = tuple(DynamicScenario(
            name=f"node{i}", manager="baseline", policy="full",
            platform="orange_pi_5", horizon_s=240.0,
            arrival_rate_per_s=0.05, mean_session_s=90.0, capacity=2,
            seed=seed, pool=POOL, observe=True) for i in range(2))
        return FleetScenario(
            name="ft_prop_fleet", nodes=nodes, routing=routing,
            horizon_s=240.0, arrival_rate_per_s=0.1, mean_session_s=90.0,
            seed=seed, feedback_rounds=1)

    serial = ScenarioRunner(max_workers=1).run_fleet([fleet()])[0]
    parallel = ScenarioRunner(max_workers=2).run_fleet([fleet()])[0]
    rows_serial = export_segments(serial.telemetry)
    rows_parallel = export_segments(parallel.telemetry)
    assert rows_serial == rows_parallel
    one, two = FinetuneBuffer(), FinetuneBuffer()
    one.ingest(rows_serial)
    two.ingest(rows_parallel)
    assert one.rows() == two.rows()
