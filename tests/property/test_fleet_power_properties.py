"""Property-based tests for energy-budgeted fleet dispatch determinism.

The power governor runs entirely in dispatch phase 1 (the parent
process), so everything it produces — `least_joules` routing decisions,
DVFS transitions, the watt-second violation ledger, shed counts — must be
bit-identical whether the node slices are then served by 1 worker or N.
Swept over randomized demand, brownout shifts, node failures and the
cap-blind baseline (derandomized, mirroring
``tests/property/test_obs_properties.py`` so tier-1 runs reproduce bit
for bit).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import FleetScenario, ScenarioRunner
from repro.runner.scenario import DynamicScenario

POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")


def power_fleet(seed, cap, shift, enforce, fail, observe=False):
    nodes = tuple(DynamicScenario(
        name=f"node{i}", manager="baseline", policy="full",
        platform=("orange_pi_5" if i % 2 == 0 else "jetson_class"),
        horizon_s=280.0, arrival_rate_per_s=0.05, mean_session_s=90.0,
        capacity=2, seed=seed, pool=POOL, observe=observe)
        for i in range(3))
    return FleetScenario(
        name="power_prop", nodes=nodes, routing="least_joules",
        horizon_s=280.0, arrival_rate_per_s=0.12, mean_session_s=90.0,
        seed=seed, fail_at=fail, power_cap_w=cap, power_cap_shift=shift,
        power_enforce=enforce)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       cap=st.sampled_from([14.0, 22.0, 40.0]),
       shift=st.sampled_from([None, (90.0, 9.0), (200.0, 30.0)]),
       enforce=st.booleans(),
       fail=st.sampled_from([(), ((0, 120.0),)]))
def test_power_ledger_worker_count_invariant(seed, cap, shift, enforce,
                                             fail):
    """1-vs-2-worker runs agree on every report bit, ledger included."""
    fleet = power_fleet(seed, cap, shift, enforce, fail)
    one = ScenarioRunner(max_workers=1).run_fleet([fleet])[0]
    two = ScenarioRunner(max_workers=2).run_fleet([fleet])[0]
    assert one.report == two.report
    ledger = one.report.power
    assert ledger is not None
    assert ledger.enforced == enforce
    # The ledger's segment trace always tiles the full horizon.
    assert ledger.segments[0].start_s == 0.0
    assert abs(ledger.segments[-1].end_s - 280.0) < 1e-9
    if not enforce:
        # The cap-blind baseline never renegotiates or sheds.
        assert ledger.dvfs_transitions == ()
        assert one.report.shed == 0


@settings(max_examples=4, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       shift=st.sampled_from([(90.0, 9.0), (140.0, 12.0)]))
def test_power_telemetry_merge_deterministic(seed, shift):
    """Power metrics ride the observe path without perturbing reports,
    and 1- vs 2-worker telemetry snapshots merge identically."""
    off = ScenarioRunner(max_workers=1).run_fleet(
        [power_fleet(seed, 30.0, shift, True, ())])[0]
    on1 = ScenarioRunner(max_workers=1).run_fleet(
        [power_fleet(seed, 30.0, shift, True, (), observe=True)])[0]
    on2 = ScenarioRunner(max_workers=2).run_fleet(
        [power_fleet(seed, 30.0, shift, True, (), observe=True)])[0]
    assert on1.report == off.report
    assert on2.report == off.report
    assert on1.telemetry is not None
    assert on1.telemetry == on2.telemetry
