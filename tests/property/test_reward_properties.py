"""Property-based tests for the reward function, priorities and metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.priorities import dynamic_priorities, normalize_priorities
from repro.hw import orange_pi_5
from repro.search.reward import (
    DISQUALIFIED,
    RewardConfig,
    mapping_reward,
    thresholds_for,
)
from repro.zoo import get_model

PLATFORM = orange_pi_5()


def rates_strategy(n=4, lo=0.01, hi=80.0):
    return st.lists(st.floats(lo, hi, allow_nan=False), min_size=n,
                    max_size=n)


@settings(max_examples=50, deadline=None)
@given(rates_strategy(), st.integers(0, 3))
def test_weighted_reward_monotone_in_prioritised_rate(rates, boosted):
    """Raising one DNN's rate never lowers the weighted reward."""
    rates = np.array(rates)
    p = np.full(4, 0.25)
    thresholds = np.zeros(4)
    base = mapping_reward(rates, p, thresholds, None, "weighted")
    bumped = rates.copy()
    bumped[boosted] *= 1.5
    assert mapping_reward(bumped, p, thresholds, None, "weighted") >= base


@settings(max_examples=50, deadline=None)
@given(rates_strategy())
def test_reward_disqualifies_iff_any_rate_at_or_below_threshold(rates):
    rates = np.array(rates)
    p = np.full(4, 0.25)
    thresholds = np.full(4, 1.0)
    reward = mapping_reward(rates, p, thresholds, None, "weighted")
    if (rates <= thresholds).any():
        assert reward == DISQUALIFIED
    else:
        assert reward > DISQUALIFIED
        assert reward == float(rates @ p)


@settings(max_examples=50, deadline=None)
@given(rates_strategy(), rates_strategy())
def test_weighted_reward_scales_linearly_with_rates(rates, _unused):
    """reward(k * rates) = k * reward(rates) above the threshold."""
    rates = np.array(rates) + 1.5     # stay clear of the threshold
    p = np.array([0.7, 0.1, 0.1, 0.1])
    thresholds = np.full(4, 1.0)
    r1 = mapping_reward(rates, p, thresholds, None, "weighted")
    r2 = mapping_reward(2.0 * rates, p, thresholds, None, "weighted")
    np.testing.assert_allclose(r2, 2.0 * r1, rtol=1e-12)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=6))
def test_normalize_priorities_sums_to_one_and_preserves_order(weights):
    p = normalize_priorities(weights)
    assert p.sum() == np.float64(1.0) or abs(p.sum() - 1.0) < 1e-12
    assert (p > 0).all()
    order = np.argsort(weights)
    assert (np.argsort(p) == order).all()


@settings(max_examples=25, deadline=None)
@given(st.permutations(["alexnet", "vgg16", "squeezenet", "resnet50"]))
def test_dynamic_priorities_follow_demand_regardless_of_order(names):
    workload = [get_model(n) for n in names]
    p = dynamic_priorities(workload)
    macs = np.array([m.macs for m in workload])
    assert (np.argsort(p) == np.argsort(macs)).all()
    assert abs(p.sum() - 1.0) < 1e-12


@settings(max_examples=25, deadline=None)
@given(st.floats(0.0, 0.2), st.floats(0.0, 1.0))
def test_floor_thresholds_monotone_in_priority(threshold, gain):
    """A higher-priority DNN never receives a lower floor."""
    workload = [get_model(n) for n in ("alexnet", "vgg16")]
    config = RewardConfig(kind="floor", threshold=threshold,
                          priority_gain=gain)
    low = thresholds_for(workload, PLATFORM, config,
                         np.array([0.2, 0.8]))
    ideals = np.array([PLATFORM.ideal_throughput(m) for m in workload])
    # Same DNN, higher priority => floor (as fraction of ideal) rises.
    high = thresholds_for(workload, PLATFORM, config,
                          np.array([0.8, 0.2]))
    assert high[0] / ideals[0] >= low[0] / ideals[0] - 1e-12
    assert low[1] / ideals[1] >= high[1] / ideals[1] - 1e-12


@settings(max_examples=40, deadline=None)
@given(rates_strategy(), st.floats(0.05, 0.95))
def test_floor_reward_is_average_throughput_when_qualified(rates, frac):
    rates = np.array(rates) + 2.0
    p = np.array([frac, (1 - frac) / 3, (1 - frac) / 3, (1 - frac) / 3])
    thresholds = np.full(4, 0.5)
    reward = mapping_reward(rates, p, thresholds, None, "floor")
    assert abs(reward - rates.mean()) < 1e-12
