"""Property-based tests for the serve/fleet subsystem invariants.

Three families of invariants, swept over randomized Poisson traces and
tier mixes (derandomized, so tier-1 runs are reproducible bit for bit):

* **Session conservation** — every session request the loop observes ends
  in exactly one terminal state: ``arrivals == served + serving +
  rejected + abandoned + evicted + queued_at_horizon + out_of_horizon``,
  for every preemption policy, on the single-node and the fleet path.
* **No-starvation structure** — under ``evict_lowest_tier`` a gold
  session only ever waits (or is denied) when the node is already full
  of *gold* sessions: anything lower-tier would have been preempted.
* **Monotonicity** — enabling ``evict_lowest_tier`` never increases the
  gold tier-violation fraction (waiting counts as violation time: a
  queued session's potential is 0).  Strict per-trace monotonicity is a
  property of the moderately saturated regime swept here; the aggregate
  regression below additionally pins the mean improvement and the
  acceptance case (strict drop under saturation with conservation).

The serving loop runs over the trivially cheap GPU-only manager so each
hypothesis example costs one or two solver-cached ``serve_trace`` calls,
not an MCTS search.
"""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GpuBaseline
from repro.hw import orange_pi_5
from repro.runner import DynamicScenario, FleetScenario, ScenarioRunner
from repro.serve import (AdmissionConfig, FullReplan, ServeConfig,
                         serve_trace, serve_trace_reference)
from repro.sim import EvaluationCache
from repro.workloads import (TraceConfig, iter_session_requests,
                             sample_session_requests)

PLATFORM = orange_pi_5()
POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet",
        "resnet12", "mobilenet")

#: One evaluation cache for the whole module: reports are bit-identical
#: warm or cold (regression-tested in tests/test_serve.py), so sharing
#: only cuts the suite's wall clock.
CACHE = EvaluationCache(PLATFORM)

TERMINAL_STATES = {"served", "serving", "rejected", "abandoned",
                   "evicted", "queued", "out_of_horizon"}

TIER_MIXES = (("gold", "silver", "bronze"),
              ("gold", "bronze", "bronze"),
              ("bronze", "gold", "silver"),
              ("gold",),
              ("bronze",))


def sample_trace(seed, rate, tiers, horizon=360.0, mean_session=140.0,
                 shift_prob=0.0):
    return sample_session_requests(
        np.random.default_rng(seed),
        TraceConfig(horizon_s=horizon, arrival_rate_per_s=rate,
                    mean_session_s=mean_session, pool=POOL),
        tiers=tiers, tier_shift_prob=shift_prob)


def serve(requests, preemption, capacity=2, queue_limit=6,
          max_wait=120.0, horizon=360.0):
    config = ServeConfig(
        horizon_s=horizon,
        admission=AdmissionConfig(capacity=capacity,
                                  queue_limit=queue_limit,
                                  max_queue_wait_s=max_wait,
                                  preemption=preemption),
        pool=POOL, seed=0)
    return serve_trace(requests, FullReplan(GpuBaseline()), PLATFORM,
                       config, cache=CACHE)


def assert_conserved(report):
    """The session-conservation invariant over one ServeReport."""
    counts = Counter(s.outcome for s in report.sessions)
    assert set(counts) <= TERMINAL_STATES
    assert sum(counts.values()) == report.arrivals
    assert (counts["served"] + counts["serving"] + counts["rejected"]
            + counts["abandoned"] + counts["evicted"] + counts["queued"]
            + counts["out_of_horizon"]) == report.arrivals
    # Admission implies one of the admitted terminal states, and the
    # report's counters agree with the per-session records.
    assert report.admitted == (counts["served"] + counts["serving"]
                               + counts["evicted"])
    assert report.evicted == counts["evicted"]
    assert report.resumptions <= report.evictions
    for s in report.sessions:
        assert (s.admitted_s is not None) == (
            s.outcome in ("served", "serving", "evicted"))


# ----------------------------------------------------------- conservation
@settings(max_examples=30, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       rate=st.sampled_from([1 / 6, 1 / 10, 1 / 15, 1 / 20]),
       capacity=st.integers(1, 3),
       tiers=st.sampled_from(TIER_MIXES),
       preemption=st.sampled_from(["none", "evict_lowest_tier",
                                   "renegotiate"]),
       shift_prob=st.sampled_from([0.0, 0.3]),
       max_wait=st.sampled_from([30.0, 120.0]))
def test_session_conservation_single_node(seed, rate, capacity, tiers,
                                          preemption, shift_prob, max_wait):
    requests = sample_trace(seed, rate, tiers, shift_prob=shift_prob)
    report = serve(requests, preemption, capacity=capacity,
                   max_wait=max_wait)
    assert report.arrivals == len(requests)
    assert_conserved(report)
    if preemption == "none":
        assert report.evictions == 0 and report.demotions == 0
    if preemption == "renegotiate":
        assert report.evictions == 0       # renegotiation never suspends
    # A session that is gold from birth can never be preempted.  (Keying
    # on the final tier would be wrong: a silver session evicted before
    # its pending gold tier-shift fires legitimately ends gold with an
    # eviction on record.)
    born_gold = {r.session_id for r in requests if r.tier == "gold"}
    assert all(s.evictions == 0 and s.demotions == 0
               for s in report.sessions if s.session_id in born_gold)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       preemption=st.sampled_from(["none", "evict_lowest_tier",
                                   "renegotiate"]),
       routing=st.sampled_from(["round_robin", "tier_affinity_preempt"]),
       fail=st.booleans())
def test_session_conservation_fleet(seed, preemption, routing, fail):
    """Fleet path: per-node conservation plus the fleet arrival ledger."""
    nodes = tuple(DynamicScenario(
        name=f"node{i}", manager="baseline", policy="full",
        platform=("orange_pi_5" if i == 0 else "jetson_class"),
        seed=i, pool=POOL, capacity=2, queue_limit=6,
        max_queue_wait_s=120.0, preemption=preemption) for i in range(2))
    fleet = FleetScenario(
        name="prop", nodes=nodes, routing=routing, seed=seed,
        horizon_s=240.0, arrival_rate_per_s=1 / 6, mean_session_s=100.0,
        fail_at=(((0, 120.0),) if fail else ()))
    report = ScenarioRunner(max_workers=1).run_fleet([fleet])[0].report
    for node in report.nodes:
        assert_conserved(node.report)
    # Distinct-session ledger: routed sessions minus re-dispatch double
    # counting plus the never-routed demand covers every arrival, and the
    # per-tier rollup partitions the routed distinct sessions.
    assert report.arrivals == sum(n.routed for n in report.nodes) \
        - report.re_dispatched + report.lost + report.out_of_horizon
    tiers = report.tier_outcomes()
    assert sum(row["arrivals"] for row in tiers.values()) \
        == report.arrivals - report.lost - report.out_of_horizon
    assert 0.0 < report.eviction_fairness <= 1.0


# ---------------------------------------------------------- no starvation
@settings(max_examples=20, deadline=None, derandomize=True)
@given(seed=st.integers(0, 39),
       rate=st.sampled_from([1 / 10, 1 / 15, 1 / 20]),
       capacity=st.integers(2, 3),
       tiers=st.sampled_from(TIER_MIXES[:2]))
def test_gold_only_blocked_by_gold_under_eviction(seed, rate, capacity,
                                                  tiers):
    """Structural no-starvation: with ``evict_lowest_tier``, a gold
    session that waited or was denied must have arrived while at least
    ``capacity`` *gold* sessions were being served — any lower-tier
    resident would have been evicted for it instead."""
    requests = sample_trace(seed, rate, tiers)
    report = serve(requests, "evict_lowest_tier", capacity=capacity)
    gold = [s for s in report.sessions if s.tier == "gold"]
    intervals = [(s.admitted_s,
                  s.departed_s if s.departed_s is not None
                  else report.horizon_s)
                 for s in gold if s.admitted_s is not None]
    for s in gold:
        if s.outcome == "out_of_horizon":
            continue
        waited = s.queue_wait_s > 0 or s.outcome in ("rejected",
                                                     "abandoned", "queued")
        if not waited:
            continue
        live_gold = sum(1 for (a, d) in intervals
                        if a <= s.arrival_s < d and a != s.admitted_s)
        assert live_gold >= capacity, \
            f"gold session {s.session_id} starved behind non-gold traffic"


# ----------------------------------------------------------- monotonicity
@settings(max_examples=25, deadline=None, derandomize=True)
@given(seed=st.integers(0, 39),
       tiers=st.sampled_from(TIER_MIXES[:2]))
def test_gold_violation_monotone_under_eviction(seed, tiers):
    """Enabling eviction never increases the gold violation fraction
    (waiting time counts as violation time) on the moderately saturated
    sweep regime — arrival rate 1/10 s against capacity 2."""
    requests = sample_trace(seed, 1 / 10, tiers)
    baseline = serve(requests, "none")
    evicting = serve(requests, "evict_lowest_tier")
    assert_conserved(evicting)
    assert evicting.tier_violation_fraction("gold") \
        <= baseline.tier_violation_fraction("gold") + 1e-9


def test_gold_violation_drops_in_aggregate():
    """The sweep-level regression behind the acceptance criterion: over
    a fixed randomized batch of saturating traces the mean gold
    violation fraction drops clearly, and evictions do the work."""
    deltas = []
    evictions = 0
    for seed in range(12):
        requests = sample_trace(seed, 1 / 10, ("gold", "silver", "bronze"))
        baseline = serve(requests, "none")
        evicting = serve(requests, "evict_lowest_tier")
        evictions += evicting.evictions
        deltas.append(baseline.tier_violation_fraction("gold")
                      - evicting.tier_violation_fraction("gold"))
    assert evictions > 0
    assert float(np.mean(deltas)) > 0.05


def test_acceptance_saturating_trace_strict_gold_improvement():
    """Acceptance: under a saturating trace, ``evict_lowest_tier`` yields
    *strictly* lower gold violation than no-preempt while conservation
    holds and the eviction-fairness metric stays a valid bound."""
    requests = sample_trace(60, 1 / 10, ("gold", "bronze", "bronze"))
    baseline = serve(requests, "none")
    evicting = serve(requests, "evict_lowest_tier")
    assert_conserved(baseline)
    assert_conserved(evicting)
    assert evicting.evictions > 0
    assert evicting.tier_violation_fraction("gold") \
        < baseline.tier_violation_fraction("gold")
    assert 0.0 < evicting.eviction_fairness <= 1.0
    # Gold improves by converting wait into service, not by admitting
    # less gold demand.
    gold_served = sum(s.served_seconds for s in evicting.sessions
                      if s.tier == "gold")
    gold_served_base = sum(s.served_seconds for s in baseline.sessions
                           if s.tier == "gold")
    assert gold_served >= gold_served_base


def test_renegotiation_spares_bronze_sessions():
    """Renegotiation's side of the trade-off: no session is ever lost to
    eviction (eviction fairness stays 1.0), at the price of demoted
    tiers and overcommit contention."""
    requests = sample_trace(60, 1 / 10, ("gold", "silver", "bronze"))
    renegotiated = serve(requests, "renegotiate")
    assert_conserved(renegotiated)
    assert renegotiated.demotions > 0
    assert renegotiated.evicted == 0
    assert renegotiated.eviction_fairness == 1.0


# ------------------------------------------------------------ bit identity
# The streaming rewrite of the serving loop (generator arrivals, keyed
# waiting room, scheduled queue timeouts, vectorized accounting) must be
# observationally *identical* to the pre-streaming loop kept in
# :mod:`repro.serve.reference` — same event total order, same rng
# consumption, last-ulp-equal float accounting.  These properties pin
# that equivalence across randomized traces and every preemption policy.

@settings(max_examples=15, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       rate=st.sampled_from([1 / 6, 1 / 10, 1 / 20]),
       capacity=st.integers(1, 3),
       tiers=st.sampled_from(TIER_MIXES),
       preemption=st.sampled_from(["none", "evict_lowest_tier",
                                   "renegotiate"]),
       shift_prob=st.sampled_from([0.0, 0.3]),
       max_wait=st.sampled_from([30.0, 120.0]))
def test_streaming_loop_bit_identical_to_reference(seed, rate, capacity,
                                                   tiers, preemption,
                                                   shift_prob, max_wait):
    """Streaming loop fed by a generator == reference loop fed the list,
    compared as whole reports (sessions, timeline, counters — dataclass
    equality is exact float equality, no tolerance)."""
    requests = sample_trace(seed, rate, tiers, shift_prob=shift_prob)
    config = ServeConfig(
        horizon_s=360.0,
        admission=AdmissionConfig(capacity=capacity, queue_limit=6,
                                  max_queue_wait_s=max_wait,
                                  preemption=preemption),
        pool=POOL, seed=0)
    streamed = serve_trace((r for r in requests), FullReplan(GpuBaseline()),
                           PLATFORM, config, cache=CACHE)
    reference = serve_trace_reference(requests, FullReplan(GpuBaseline()),
                                      PLATFORM, config, cache=CACHE)
    assert streamed == reference


def test_streamed_sampler_end_to_end_matches_reference():
    """The full streaming pipeline — ``iter_session_requests`` generator
    straight into ``serve_trace``, trace never materialised — equals the
    materialise-everything reference pipeline."""
    trace = TraceConfig(horizon_s=360.0, arrival_rate_per_s=1 / 8,
                        mean_session_s=120.0, pool=POOL)
    config = ServeConfig(
        horizon_s=360.0,
        admission=AdmissionConfig(capacity=2, queue_limit=6,
                                  max_queue_wait_s=60.0,
                                  preemption="evict_lowest_tier"),
        pool=POOL, seed=0)
    stream = iter_session_requests(np.random.default_rng(1234), trace,
                                   tier_shift_prob=0.3)
    requests = sample_session_requests(np.random.default_rng(1234), trace,
                                       tier_shift_prob=0.3)
    streamed = serve_trace(stream, FullReplan(GpuBaseline()), PLATFORM,
                           config, cache=CACHE)
    reference = serve_trace_reference(requests, FullReplan(GpuBaseline()),
                                      PLATFORM, config, cache=CACHE)
    assert streamed == reference


@settings(max_examples=4, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       preemption=st.sampled_from(["none", "evict_lowest_tier"]),
       fail=st.booleans())
def test_fleet_report_invariant_to_worker_count(seed, preemption, fail):
    """The fleet path stays bit-identical whether nodes run inline in one
    worker or fan across a process pool — the streaming loop introduces
    no cross-process nondeterminism."""
    nodes = tuple(DynamicScenario(
        name=f"node{i}", manager="baseline", policy="full",
        platform=("orange_pi_5" if i == 0 else "jetson_class"),
        seed=i, pool=POOL, capacity=2, queue_limit=6,
        max_queue_wait_s=120.0, preemption=preemption) for i in range(2))
    fleet = FleetScenario(
        name="prop-workers", nodes=nodes, routing="round_robin", seed=seed,
        horizon_s=240.0, arrival_rate_per_s=1 / 6, mean_session_s=100.0,
        fail_at=(((0, 120.0),) if fail else ()))
    solo = ScenarioRunner(max_workers=1).run_fleet([fleet])[0].report
    pooled = ScenarioRunner(max_workers=2).run_fleet([fleet])[0].report
    assert solo == pooled
