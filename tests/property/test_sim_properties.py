"""Property-based tests (hypothesis) for mapping and simulator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import orange_pi_5
from repro.mapping import (
    Mapping,
    extract_stages,
    random_partition_mapping,
    uniform_block_mapping,
)
from repro.sim import compute_stage_demands, simulate
from repro.zoo import MODEL_POOL, get_model

PLATFORM = orange_pi_5()
SMALL_POOL = ("alexnet", "squeezenet_v2", "mobilenet", "resnet12")


def workload_strategy():
    return st.lists(st.sampled_from(SMALL_POOL), min_size=1, max_size=3,
                    unique=True)


@settings(max_examples=25, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_random_mappings_always_valid(names, seed):
    workload = [get_model(n) for n in names]
    rng = np.random.default_rng(seed)
    for maker in (random_partition_mapping, uniform_block_mapping):
        mapping = maker(workload, 3, rng)
        mapping.validate_against(workload, 3)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(0, 2), min_size=1, max_size=30))
def test_stage_extraction_partitions_blocks(assignment):
    stages = extract_stages(0, tuple(assignment))
    # Stages tile the block range exactly, in order, without overlap.
    assert stages[0].block_start == 0
    assert stages[-1].block_end == len(assignment)
    for a, b in zip(stages, stages[1:]):
        assert a.block_end == b.block_start
        assert a.component != b.component  # maximal runs
    for stage in stages:
        assert all(assignment[i] == stage.component
                   for i in range(stage.block_start, stage.block_end))


@settings(max_examples=20, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_rates_positive_finite_and_bounded_by_solo(names, seed):
    workload = [get_model(n) for n in names]
    rng = np.random.default_rng(seed)
    mapping = random_partition_mapping(workload, 3, rng)
    result = simulate(workload, mapping, PLATFORM)
    assert np.isfinite(result.rates).all()
    assert (result.rates > 0).all()
    # No DNN can beat the fastest single-component solo execution of the
    # entire platform by an unphysical margin: bound by the sum of ideal
    # rates across components (a loose but universal cap).
    from repro.hw import solo_throughput

    for model, rate in zip(workload, result.rates):
        cap = sum(solo_throughput(model, c) for c in PLATFORM.components)
        assert rate <= cap * 1.001


@settings(max_examples=20, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_component_utilisation_never_exceeds_capacity(names, seed):
    workload = [get_model(n) for n in names]
    rng = np.random.default_rng(seed)
    mapping = uniform_block_mapping(workload, 3, rng)
    result = simulate(workload, mapping, PLATFORM)
    assert (result.solution.component_utilisation <= 1.0 + 1e-6).all()


@settings(max_examples=20, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_stage_demands_cover_all_blocks_and_kernels(names, seed):
    workload = [get_model(n) for n in names]
    rng = np.random.default_rng(seed)
    mapping = random_partition_mapping(workload, 3, rng)
    demands = compute_stage_demands(workload, mapping, PLATFORM)
    blocks = sum(d.stage.num_blocks for d in demands)
    kernels = sum(d.num_kernels for d in demands)
    assert blocks == sum(m.num_blocks for m in workload)
    assert kernels == sum(m.num_layers for m in workload)
    assert all(d.seconds_per_inference > 0 for d in demands)


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(MODEL_POOL))
def test_single_dnn_gpu_mapping_reaches_ideal(name):
    model = get_model(name)
    mapping = Mapping((tuple([0] * model.num_blocks),))
    result = simulate([model], mapping, PLATFORM)
    np.testing.assert_allclose(result.potentials, [1.0], rtol=1e-9)


@settings(max_examples=15, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_simulation_is_deterministic(names, seed):
    workload = [get_model(n) for n in names]
    rng = np.random.default_rng(seed)
    mapping = random_partition_mapping(workload, 3, rng)
    a = simulate(workload, mapping, PLATFORM)
    b = simulate(workload, mapping, PLATFORM)
    np.testing.assert_array_equal(a.rates, b.rates)
