"""Property-based tests for workload construction invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    SLA_TIERS,
    TraceConfig,
    assign_tiers,
    poisson_trace,
    rotating_priority_schedule,
    sample_mix,
    trace_peak_concurrency,
)
from repro.zoo import get_model


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1),
       st.floats(0.005, 0.1),
       st.floats(30.0, 600.0),
       st.integers(1, 5))
def test_trace_invariants(seed, rate, session, cap):
    """Any trace: sorted, within horizon, concurrency-capped, and every
    departure matches a preceding arrival of the same model."""
    config = TraceConfig(horizon_s=900.0, arrival_rate_per_s=rate,
                         mean_session_s=session, max_concurrent=cap)
    events = poisson_trace(np.random.default_rng(seed), config)
    times = [e.time for e in events]
    assert times == sorted(times)
    assert all(0 <= t < 900.0 for t in times)
    assert trace_peak_concurrency(events) <= cap
    live = set()
    for event in sorted(events,
                        key=lambda e: (e.time, e.kind != "departure")):
        if event.kind == "arrival":
            live.add(event.model.name)
        else:
            assert event.model.name in live
            live.remove(event.model.name)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(1, 5))
def test_sample_mix_always_distinct_and_buildable(seed, size):
    mix = sample_mix(np.random.default_rng(seed), size)
    names = [m.name for m in mix]
    assert len(set(names)) == size
    assert all(m.num_blocks >= 1 for m in mix)


@settings(max_examples=20, deadline=None)
@given(st.floats(0.3, 0.9), st.floats(0.01, 0.25))
def test_rotating_schedule_total_priority_constant(high, low):
    """Each stage's priority dict has one high, rest low — the budget the
    manager normalises is the same in every stage."""
    models = [get_model(n) for n in ("alexnet", "vgg16", "squeezenet")]
    order = ["vgg16", "squeezenet", "alexnet"]
    events = rotating_priority_schedule(models, order, high=high, low=low)
    shifts = [e for e in events if e.kind == "priority"]
    totals = {round(sum(e.priorities.values()), 9) for e in shifts}
    assert len(totals) == 1
    for event in shifts:
        assert sorted(event.priorities.values())[-1] == high


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 8), st.integers(0, 2**31 - 1))
def test_assign_tiers_round_robin_covers_ladder(size, seed):
    mix = sample_mix(np.random.default_rng(seed), min(size, 5))
    assignment = assign_tiers(mix)
    p = assignment.priority_vector(mix)
    assert abs(p.sum() - 1.0) < 1e-12
    assert (p > 0).all()
    used = {assignment.tier_of(m.name).name for m in mix}
    assert used <= {t.name for t in SLA_TIERS}
