"""Differential fuzz: the compiled solver kernel vs the scalar oracle.

Three layers of defence against silent drift in the compiled backend:

* The **pure-python reference kernel** (`repro.sim._kernel.solve_packed`,
  the exact code numba JITs) is differential-tested bit-for-bit against
  the scalar oracle on every host — no compiled provider required, so
  the kernel's numerics can never go untested.
* The **resolved native provider** (numba, or the cc-built C twin) is
  held to the documented compiled-backend contract — rel <= 1e-12 on
  rates and utilisation, identical convergence flags, identical
  iteration counts on non-limit-cycle instances — and skip-marks, never
  silently passes on the numpy fallback, when no provider exists.
* The **fallback path itself** is pinned: with no provider the compiled
  backend must answer with numpy's exact results after a one-time
  RuntimeWarning.

Randomized demand sets cover the edges the packer and kernel must get
right: empty elements mixed into batches, heterogeneous stage counts
(the padded-lane analogue), limit-cycle instances (long mixed workloads
driven past the burn-in), and truncated ``max_iter`` budgets.
"""

import importlib.util
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import jetson_class, orange_pi_5
from repro.mapping import random_partition_mapping, uniform_block_mapping
from repro.sim import (
    compiled_provider,
    compute_stage_demands,
    solve_batch_compiled,
    solve_steady_state,
    solve_steady_state_batch,
)
from repro.sim import backend as backend_mod
from repro.sim.contention import _CYCLE_BURN_IN
from repro.zoo import get_model

PLATFORMS = {"orange_pi_5": orange_pi_5(), "jetson_class": jetson_class()}
SMALL_POOL = ("alexnet", "squeezenet_v2", "mobilenet", "resnet12")
#: Mixes that reliably drive the fixed point into limit-cycle territory.
CYCLE_POOL = ("squeezenet_v2", "inception_v4", "resnet50")

COMPILED_TOL = dict(rtol=1e-12, atol=0.0)

PROVIDER = compiled_provider()
needs_provider = pytest.mark.skipif(
    PROVIDER is None,
    reason="no compiled provider (numba not installed, C build "
           "unavailable)")
needs_numba = pytest.mark.skipif(
    importlib.util.find_spec("numba") is None,
    reason="numba not installed")


def _demand_batch(pool, num_models, seed, batch_size, platform):
    rng = np.random.default_rng(seed)
    names = list(pool[:num_models])
    workload = [get_model(n) for n in names]
    sets = []
    for i in range(batch_size):
        maker = (random_partition_mapping if i % 2 == 0
                 else uniform_block_mapping)
        mapping = maker(workload, platform.num_components, rng)
        sets.append(compute_stage_demands(workload, mapping, platform))
    return workload, sets


def _assert_bit_identical(scalar, got):
    assert scalar.iterations == got.iterations
    assert scalar.converged == got.converged
    np.testing.assert_array_equal(got.rates, scalar.rates)
    np.testing.assert_array_equal(got.stage_allocations,
                                  scalar.stage_allocations)
    np.testing.assert_array_equal(got.stage_demands, scalar.stage_demands)
    np.testing.assert_array_equal(got.component_utilisation,
                                  scalar.component_utilisation)


def _assert_within_contract(scalar, got):
    """The documented compiled-backend tolerance contract."""
    if scalar.iterations < _CYCLE_BURN_IN:
        assert scalar.iterations == got.iterations
    assert scalar.converged == got.converged
    np.testing.assert_allclose(got.rates, scalar.rates, **COMPILED_TOL)
    np.testing.assert_allclose(got.component_utilisation,
                               scalar.component_utilisation, **COMPILED_TOL)


class TestReferenceKernel:
    """The un-JITted kernel is bit-identical to the scalar oracle — the
    always-runnable anchor the native providers are twins of."""

    @settings(max_examples=15, deadline=None)
    @given(st.sampled_from(sorted(PLATFORMS)), st.integers(1, 4),
           st.integers(0, 2**31 - 1), st.integers(1, 5))
    def test_fuzz_bit_identical(self, platform_name, num_models, seed,
                                batch_size):
        platform = PLATFORMS[platform_name]
        workload, sets = _demand_batch(SMALL_POOL, num_models, seed,
                                       batch_size, platform)
        got = solve_batch_compiled(sets, len(workload), platform,
                                   impl="python")
        for demands, sol in zip(sets, got):
            _assert_bit_identical(
                solve_steady_state(demands, len(workload), platform), sol)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from([1, 3, 7, 40]))
    def test_truncated_budget_bit_identical(self, seed, max_iter):
        platform = PLATFORMS["orange_pi_5"]
        workload, sets = _demand_batch(SMALL_POOL, 3, seed, 3, platform)
        got = solve_batch_compiled(sets, len(workload), platform,
                                   max_iter=max_iter, impl="python")
        for demands, sol in zip(sets, got):
            _assert_bit_identical(
                solve_steady_state(demands, len(workload), platform,
                                   max_iter=max_iter), sol)

    def test_limit_cycle_instances_bit_identical(self):
        platform = PLATFORMS["orange_pi_5"]
        workload, sets = _demand_batch(CYCLE_POOL, 3, 0, 16, platform)
        scalars = [solve_steady_state(d, len(workload), platform)
                   for d in sets]
        # The mix must actually exercise the cycle-resolution path.
        assert any(s.iterations >= _CYCLE_BURN_IN for s in scalars)
        got = solve_batch_compiled(sets, len(workload), platform,
                                   impl="python")
        for scalar, sol in zip(scalars, got):
            _assert_bit_identical(scalar, sol)

    def test_empty_elements_mixed_in(self):
        platform = PLATFORMS["orange_pi_5"]
        workload, sets = _demand_batch(SMALL_POOL, 2, 1, 1, platform)
        got = solve_batch_compiled([[], sets[0], []], len(workload),
                                   platform, impl="python")
        for sol in (got[0], got[2]):
            assert sol.converged and sol.iterations == 0
            assert sol.stage_allocations.size == 0
            np.testing.assert_array_equal(sol.rates,
                                          np.zeros(len(workload)))
        _assert_bit_identical(
            solve_steady_state(sets[0], len(workload), platform), got[1])

    def test_nonpositive_demand_rejected(self):
        platform = PLATFORMS["orange_pi_5"]
        _, sets = _demand_batch(SMALL_POOL, 2, 2, 1, platform)
        bad = sets[0][0].__class__(stage=sets[0][0].stage,
                                   seconds_per_inference=0.0,
                                   num_kernels=1)
        with pytest.raises(ValueError, match="must be positive"):
            solve_batch_compiled([[bad]], 2, platform, impl="python")


@needs_provider
class TestNativeProvider:
    """The resolved native kernel honours the documented contract."""

    @settings(max_examples=15, deadline=None)
    @given(st.sampled_from(sorted(PLATFORMS)), st.integers(1, 4),
           st.integers(0, 2**31 - 1), st.integers(1, 6))
    def test_fuzz_within_contract(self, platform_name, num_models, seed,
                                  batch_size):
        platform = PLATFORMS[platform_name]
        workload, sets = _demand_batch(SMALL_POOL, num_models, seed,
                                       batch_size, platform)
        got = solve_batch_compiled(sets, len(workload), platform)
        for demands, sol in zip(sets, got):
            _assert_within_contract(
                solve_steady_state(demands, len(workload), platform), sol)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from([1, 3, 7, 40]))
    def test_truncated_budget_within_contract(self, seed, max_iter):
        platform = PLATFORMS["orange_pi_5"]
        workload, sets = _demand_batch(SMALL_POOL, 3, seed, 3, platform)
        got = solve_batch_compiled(sets, len(workload), platform,
                                   max_iter=max_iter)
        for demands, sol in zip(sets, got):
            _assert_within_contract(
                solve_steady_state(demands, len(workload), platform,
                                   max_iter=max_iter), sol)

    def test_limit_cycle_and_padding_within_contract(self):
        """Limit-cycle instances with heterogeneous stage counts and
        empty elements mixed into one packed batch."""
        platform = PLATFORMS["orange_pi_5"]
        workload, sets = _demand_batch(CYCLE_POOL, 3, 0, 16, platform)
        sets = [[], *sets, []]
        scalars = [solve_steady_state(d, len(workload), platform)
                   for d in sets]
        assert any(s.iterations >= _CYCLE_BURN_IN for s in scalars)
        got = solve_batch_compiled(sets, len(workload), platform)
        for scalar, sol in zip(scalars, got):
            _assert_within_contract(scalar, sol)

    def test_backend_thread_through_batch_entry_point(self):
        """`backend="compiled"` on the public entry point resolves to the
        same provider results as calling the compiled layer directly."""
        platform = PLATFORMS["orange_pi_5"]
        workload, sets = _demand_batch(SMALL_POOL, 2, 3, 4, platform)
        via_entry = solve_steady_state_batch(sets, len(workload), platform,
                                             backend="compiled")
        direct = solve_batch_compiled(sets, len(workload), platform)
        for a, b in zip(via_entry, direct):
            np.testing.assert_array_equal(a.rates, b.rates)
            assert a.iterations == b.iterations


@needs_numba
class TestNumbaProvider:
    """Numba-specific row: the JITted kernel matches the scalar oracle.

    Separate from :class:`TestNativeProvider` so a host with numba
    exercises the JIT even when probing happened to resolve another
    provider first, and a host without numba reports a visible skip.
    """

    def test_jit_matches_scalar(self):
        platform = PLATFORMS["orange_pi_5"]
        workload, sets = _demand_batch(SMALL_POOL, 3, 11, 6, platform)
        got = solve_batch_compiled(sets, len(workload), platform,
                                   impl="numba")
        for demands, sol in zip(sets, got):
            _assert_within_contract(
                solve_steady_state(demands, len(workload), platform), sol)


class TestFallback:
    """With no native provider the compiled backend degrades loudly."""

    def test_fallback_warns_once_and_matches_numpy(self, monkeypatch):
        platform = PLATFORMS["orange_pi_5"]
        workload, sets = _demand_batch(SMALL_POOL, 2, 5, 3, platform)
        monkeypatch.setattr(backend_mod, "_provider", None)
        monkeypatch.setattr(backend_mod, "_provider_probed", True)
        monkeypatch.setattr(backend_mod, "_fallback_warned", False)
        with pytest.warns(RuntimeWarning, match="falling back to the "
                                                "numpy backend"):
            got = solve_batch_compiled(sets, len(workload), platform)
        want = solve_steady_state_batch(sets, len(workload), platform)
        for a, b in zip(got, want):
            np.testing.assert_array_equal(a.rates, b.rates)
            assert a.iterations == b.iterations
        # Second call: warning already issued, must stay quiet.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            solve_batch_compiled(sets, len(workload), platform)

    def test_unknown_impl_rejected(self):
        platform = PLATFORMS["orange_pi_5"]
        with pytest.raises(ValueError, match="implementation"):
            solve_batch_compiled([[]], 1, platform, impl="cython")
