"""Property-based tests for the :mod:`repro.obs` telemetry contracts.

Three invariants, swept over randomized traces, preemption policies and
metric streams (derandomized, so tier-1 runs are reproducible bit for
bit):

* **Zero observer effect** — ``serve_trace`` and the fleet path produce
  bit-identical reports with the recorder on and off.  Telemetry is a
  pure side channel: it never draws randomness, never reorders an event.
* **Merge determinism** — serving a fleet with 1 worker and with N
  workers yields equal merged :class:`~repro.obs.TelemetrySnapshot`
  objects, because snapshots fold in fleet order regardless of which
  process produced them.
* **Trace round-trip** — ``write_trace`` then ``read_trace`` reconstructs
  any snapshot exactly, including float values (Python's ``json`` float
  repr round-trips) and span attribute ordering.

The serving loop runs over the trivially cheap GPU-only manager so each
hypothesis example costs one or two solver-cached ``serve_trace`` calls.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GpuBaseline
from repro.hw import orange_pi_5
from repro.obs import (TelemetryRecorder, merge_snapshots, read_trace,
                       write_trace)
from repro.obs.registry import (COUNTER, GAUGE, HISTOGRAM, METRICS, SPANS)
from repro.runner import DynamicScenario, FleetScenario, ScenarioRunner
from repro.serve import AdmissionConfig, FullReplan, ServeConfig, serve_trace
from repro.sim import EvaluationCache
from repro.workloads import TraceConfig, sample_session_requests

PLATFORM = orange_pi_5()
POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")

#: Shared solver cache: reports are warm/cold bit-identical, so sharing
#: only cuts the suite's wall clock (same idiom as the serve properties).
CACHE = EvaluationCache(PLATFORM)

COUNTER_NAMES = sorted(n for n, m in METRICS.items() if m.kind == COUNTER)
GAUGE_NAMES = sorted(n for n, m in METRICS.items() if m.kind == GAUGE)
HIST_NAMES = sorted(n for n, m in METRICS.items() if m.kind == HISTOGRAM)
SPAN_NAMES = sorted(SPANS)


def sample_trace(seed, rate, tiers, shift_prob=0.0, horizon=320.0):
    return sample_session_requests(
        np.random.default_rng(seed),
        TraceConfig(horizon_s=horizon, arrival_rate_per_s=rate,
                    mean_session_s=110.0, pool=POOL),
        tiers=tiers, tier_shift_prob=shift_prob)


def serve(requests, preemption, recorder=None, capacity=2, horizon=320.0):
    config = ServeConfig(
        horizon_s=horizon,
        admission=AdmissionConfig(capacity=capacity, queue_limit=5,
                                  max_queue_wait_s=60.0,
                                  preemption=preemption),
        pool=POOL, seed=0)
    kwargs = {} if recorder is None else {"recorder": recorder}
    return serve_trace(requests, FullReplan(GpuBaseline()), PLATFORM,
                       config, cache=CACHE, **kwargs)


# ------------------------------------------------------ zero observer effect
@settings(max_examples=20, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       rate=st.sampled_from([1 / 8, 1 / 14, 1 / 20]),
       tiers=st.sampled_from([("gold", "silver", "bronze"),
                              ("gold", "bronze"), ("bronze",)]),
       preemption=st.sampled_from(["none", "evict_lowest_tier",
                                   "renegotiate"]),
       shift_prob=st.sampled_from([0.0, 0.3]))
def test_serve_report_identical_recorder_on_off(seed, rate, tiers,
                                                preemption, shift_prob):
    requests = sample_trace(seed, rate, tiers, shift_prob=shift_prob)
    off = serve(requests, preemption)
    recorder = TelemetryRecorder(where="prop")
    on = serve(requests, preemption, recorder=recorder)
    assert on == off
    snap = recorder.snapshot()
    # The recorder actually observed the run, not a no-op shadow.
    assert snap.counter_total("serve.admission.verdict") == len(requests)


@settings(max_examples=6, deadline=None, derandomize=True)
@given(seed=st.integers(0, 10_000),
       routing=st.sampled_from(["round_robin", "least_loaded"]),
       preemption=st.sampled_from(["none", "evict_lowest_tier"]))
def test_fleet_identical_and_merge_deterministic(seed, routing, preemption):
    """Fleet reports match observe on/off; 1- and 2-worker telemetry merge
    to equal snapshots."""
    def fleet(observe):
        nodes = tuple(DynamicScenario(
            name=f"node{i}", manager="baseline", policy="full",
            platform="orange_pi_5", horizon_s=280.0,
            arrival_rate_per_s=0.05, mean_session_s=90.0, capacity=2,
            seed=seed, pool=POOL, preemption=preemption, observe=observe)
            for i in range(2))
        return FleetScenario(
            name="prop_fleet", nodes=nodes, routing=routing,
            horizon_s=280.0, arrival_rate_per_s=0.1, mean_session_s=90.0,
            seed=seed)

    off = ScenarioRunner(max_workers=1).run_fleet([fleet(False)])[0]
    on1 = ScenarioRunner(max_workers=1).run_fleet([fleet(True)])[0]
    on2 = ScenarioRunner(max_workers=2).run_fleet([fleet(True)])[0]
    assert on1.report == off.report
    assert on2.report == off.report
    assert off.telemetry is None
    assert on1.telemetry is not None
    assert on1.telemetry == on2.telemetry


# ------------------------------------------------------------- round-trip
op_st = st.one_of(
    st.tuples(st.just("count"), st.sampled_from(COUNTER_NAMES),
              st.sampled_from(["", "gold", "a/b"]),
              st.floats(0.0, 1e6, allow_nan=False)),
    st.tuples(st.just("gauge"), st.sampled_from(GAUGE_NAMES),
              st.floats(0.0, 1e5, allow_nan=False),
              st.floats(-1e6, 1e6, allow_nan=False)),
    st.tuples(st.just("observe"), st.sampled_from(HIST_NAMES),
              st.floats(1e-7, 1e4, allow_nan=False)),
    st.tuples(st.just("span"), st.sampled_from(SPAN_NAMES),
              st.floats(0.0, 1e5, allow_nan=False),
              st.floats(0.0, 10.0, allow_nan=False),
              st.sampled_from(["gold", "evict", "full"])),
    st.tuples(st.just("segment"), st.sampled_from(["k1", "k2"]),
              st.floats(1e-6, 1e3, allow_nan=False)),
)


def apply_ops(recorder, ops):
    for op in ops:
        if op[0] == "count":
            recorder.count(op[1], op[3], label=op[2])
        elif op[0] == "gauge":
            recorder.gauge(op[1], op[2], op[3])
        elif op[0] == "observe":
            recorder.observe(op[1], op[2])
        elif op[0] == "span":
            recorder.span(op[1], op[2], op[3], {"tier": op[4]})
        else:
            recorder.segment(((op[1],), ((0, 1),), (2.5,)), op[2])


@settings(max_examples=40, deadline=None, derandomize=True)
@given(ops=st.lists(op_st, max_size=60), max_spans=st.sampled_from([2, 64]))
def test_trace_round_trip(tmp_path_factory, ops, max_spans):
    recorder = TelemetryRecorder(where="rt", max_spans=max_spans)
    apply_ops(recorder, ops)
    snap = recorder.snapshot()
    path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    write_trace(snap, path)
    assert read_trace(path) == snap


@settings(max_examples=15, deadline=None, derandomize=True)
@given(ops=st.lists(op_st, max_size=40),
       split=st.integers(0, 40))
def test_merge_equals_single_recorder_for_counters(ops, split):
    """Splitting one op stream across two recorders and merging gives the
    same counters/histograms/segments as one recorder seeing it all.
    (Gauges and spans depend on stream order, which the split preserves.)"""
    whole = TelemetryRecorder(where="w")
    apply_ops(whole, ops)
    first, second = TelemetryRecorder(where="a"), TelemetryRecorder(where="b")
    apply_ops(first, ops[:split])
    apply_ops(second, ops[split:])
    merged = merge_snapshots([first.snapshot(), second.snapshot()],
                             where="w")
    one = whole.snapshot()
    assert merged.counters == one.counters
    assert merged.histograms == one.histograms
    assert merged.segments == one.segments
    assert merged.span_stats == one.span_stats
