"""Property-based tests (hypothesis) for the autodiff engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autodiff import Tensor, check_gradients, ops

FLOATS = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False,
                   width=64)


def small_arrays(max_dims=3, max_side=4):
    return arrays(np.float64, array_shapes(min_dims=1, max_dims=max_dims,
                                           min_side=1, max_side=max_side),
                  elements=FLOATS)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_add_gradient_is_ones(data):
    x = Tensor(data, requires_grad=True)
    (x + x).sum().backward()
    np.testing.assert_allclose(x.grad, np.full(data.shape, 2.0))


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_sum_then_backward_shape_matches(data):
    x = Tensor(data, requires_grad=True)
    x.sum().backward()
    assert x.grad.shape == data.shape


@settings(max_examples=25, deadline=None)
@given(small_arrays(max_dims=2))
def test_softmax_is_probability_distribution(data):
    s = ops.softmax(Tensor(data), axis=-1).data
    assert np.all(s >= 0)
    np.testing.assert_allclose(s.sum(axis=-1), np.ones(s.shape[:-1]), rtol=1e-8)

    # Softmax is invariant to a constant shift.
    s2 = ops.softmax(Tensor(data + 7.3), axis=-1).data
    np.testing.assert_allclose(s, s2, rtol=1e-8, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(small_arrays(max_dims=2, max_side=4))
def test_gradcheck_composite_expression(data):
    x = Tensor(data, requires_grad=True)
    check_gradients(lambda: ((x * x).sigmoid() + x.tanh()).sum(), [x],
                    rtol=1e-3, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(
    arrays(np.float64, st.tuples(st.integers(1, 3), st.integers(1, 3)), elements=FLOATS),
    arrays(np.float64, st.tuples(st.integers(1, 3), st.integers(1, 3)), elements=FLOATS),
)
def test_matmul_matches_numpy(a, b):
    if a.shape[1] != b.shape[0]:
        b = np.resize(b, (a.shape[1], b.shape[1]))
    out = Tensor(a) @ Tensor(b)
    np.testing.assert_allclose(out.data, a @ b, rtol=1e-10, atol=1e-12)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(1, 2),  # batch
    st.integers(1, 3),  # channels
    st.integers(3, 6),  # spatial
    st.integers(1, 3),  # filters
)
def test_conv2d_linear_in_input(n, c, hw, f):
    """conv(x1 + x2) == conv(x1) + conv(x2): convolution is linear."""
    g = np.random.default_rng(42)
    x1 = g.normal(size=(n, c, hw, hw))
    x2 = g.normal(size=(n, c, hw, hw))
    w = Tensor(g.normal(size=(f, c, 3, 3)))
    lhs = ops.conv2d(Tensor(x1 + x2), w, padding=1).data
    rhs = ops.conv2d(Tensor(x1), w, padding=1).data + ops.conv2d(Tensor(x2), w, padding=1).data
    np.testing.assert_allclose(lhs, rhs, rtol=1e-8, atol=1e-10)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 5), st.integers(2, 5))
def test_avg_pool_preserves_mean(h_mult, w_mult):
    g = np.random.default_rng(0)
    x = g.normal(size=(1, 1, 2 * h_mult, 2 * w_mult))
    pooled = ops.avg_pool2d(Tensor(x), kernel=2).data
    np.testing.assert_allclose(pooled.mean(), x.mean(), rtol=1e-8)


@settings(max_examples=20, deadline=None)
@given(small_arrays(max_dims=2))
def test_relu_idempotent(data):
    x = Tensor(data)
    once = x.relu().data
    twice = Tensor(once).relu().data
    np.testing.assert_allclose(once, twice)


@settings(max_examples=20, deadline=None)
@given(small_arrays(max_dims=2))
def test_straight_through_gradient_identity(data):
    c = Tensor(data, requires_grad=True)
    q = Tensor(np.round(data))
    out = ops.straight_through(q, c)
    out.sum().backward()
    np.testing.assert_allclose(c.grad, np.ones(data.shape))
    np.testing.assert_allclose(out.data, np.round(data))
