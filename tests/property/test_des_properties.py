"""Property-based tests for the discrete-event simulator and energy model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import orange_pi_5, orange_pi_5_power
from repro.hw.energy import energy_report
from repro.mapping import random_partition_mapping
from repro.sim import DesConfig, simulate, simulate_des
from repro.zoo import get_model

PLATFORM = orange_pi_5()
POWER = orange_pi_5_power()
SMALL_POOL = ("alexnet", "squeezenet_v2", "mobilenet", "resnet12")


def workload_strategy():
    return st.lists(st.sampled_from(SMALL_POOL), min_size=1, max_size=3,
                    unique=True)


@settings(max_examples=15, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_des_rates_nonnegative_and_bounded(names, seed):
    workload = [get_model(n) for n in names]
    rng = np.random.default_rng(seed)
    mapping = random_partition_mapping(workload, 3, rng)
    result = simulate_des(workload, mapping, PLATFORM)
    assert (result.rates >= 0).all()
    # Pipelining can beat any single component solo (that is its point),
    # but never the sum of all components running flat out in parallel.
    from repro.hw import solo_throughput

    for i, model in enumerate(workload):
        parallel_roof = sum(solo_throughput(model, PLATFORM.component(c))
                            for c in range(3))
        assert result.rates[i] <= parallel_roof * 1.05


@settings(max_examples=15, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_des_latency_at_least_inverse_rate_bound(names, seed):
    """Little's-law sanity: pipeline latency >= service of slowest stage."""
    workload = [get_model(n) for n in names]
    rng = np.random.default_rng(seed)
    mapping = random_partition_mapping(workload, 3, rng)
    result = simulate_des(workload, mapping, PLATFORM)
    from repro.sim import compute_stage_demands

    demands = compute_stage_demands(workload, mapping, PLATFORM)
    for i, name in enumerate(result.workload_names):
        if result.latencies[name].size == 0:
            continue
        slowest = max(d.seconds_per_inference for d in demands
                      if d.dnn_index == i)
        assert result.latencies[name].min() >= slowest * 0.999


@settings(max_examples=15, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_des_completion_counts_consistent(names, seed):
    workload = [get_model(n) for n in names]
    rng = np.random.default_rng(seed)
    mapping = random_partition_mapping(workload, 3, rng)
    config = DesConfig(horizon_s=15.0, warmup_s=3.0)
    result = simulate_des(workload, mapping, PLATFORM, config)
    for i, name in enumerate(result.workload_names):
        measured = len(result.latencies[name])
        assert result.completions[i] >= measured
        assert result.rates[i] == measured / result.measured_seconds


@settings(max_examples=15, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_energy_report_conserves_power(names, seed):
    """System watts equal component watts plus board overhead, and the
    per-DNN dynamic attribution never exceeds the total dynamic draw."""
    workload = [get_model(n) for n in names]
    rng = np.random.default_rng(seed)
    mapping = random_partition_mapping(workload, 3, rng)
    report = energy_report(workload, mapping, PLATFORM, POWER)
    assert report.system_watts == (
        report.component_watts.sum() + POWER.board_overhead_w)
    dynamic_total = sum(
        w - c.idle_w for w, c in zip(report.component_watts,
                                     POWER.components))
    attributed = float(
        (report.dnn_joules_per_inference * report.rates).sum())
    assert attributed <= dynamic_total * (1.0 + 1e-6)


@settings(max_examples=15, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_energy_utilisation_within_unit_interval(names, seed):
    workload = [get_model(n) for n in names]
    rng = np.random.default_rng(seed)
    mapping = random_partition_mapping(workload, 3, rng)
    report = energy_report(workload, mapping, PLATFORM, POWER)
    assert (report.component_utilisation >= 0).all()
    assert (report.component_utilisation <= 1.0).all()


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(SMALL_POOL), st.integers(0, 2**31 - 1))
def test_des_agrees_with_analytical_for_single_dnn(name, seed):
    """With one DNN there is no cross-DNN contention: the two engines
    model the same pipeline and must agree closely."""
    workload = [get_model(name)]
    rng = np.random.default_rng(seed)
    mapping = random_partition_mapping(workload, 3, rng)
    analytical = simulate(workload, mapping, PLATFORM).rates[0]
    des = simulate_des(workload, mapping, PLATFORM).rates[0]
    assert abs(des - analytical) / analytical < 0.15
