"""Property tests: the batched contention solver is equivalent to the
scalar reference over arbitrary workloads and mapping batches.

This is the regression harness locking in the tentpole guarantee: the fast
path (``solve_steady_state_batch`` / ``simulate_batch``) must match the
paper-faithful scalar fixed point to 1e-9 — including non-converged
mappings (tiny ``max_iter``), limit-cycle resolutions, heterogeneous stage
counts inside one batch, and empty demand sets.

Every test is parametrized over the solver backends: ``numpy`` runs the
vectorized path (the seed contract) and ``compiled`` dispatches to the
native kernel.  The compiled rows skip-mark — never silently pass on the
numpy fallback — when no native provider (numba or the cc-built C twin)
is available on the host.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import jetson_class, orange_pi_5
from repro.mapping import random_partition_mapping, uniform_block_mapping
from repro.sim import (
    compiled_provider,
    compute_stage_demands,
    simulate,
    simulate_batch,
    solve_steady_state,
    solve_steady_state_batch,
)
from repro.sim.contention import _CYCLE_BURN_IN
from repro.zoo import get_model

PLATFORMS = {"orange_pi_5": orange_pi_5(), "jetson_class": jetson_class()}
SMALL_POOL = ("alexnet", "squeezenet_v2", "mobilenet", "resnet12")

TOL = dict(rtol=1e-9, atol=1e-9)
#: Documented compiled-backend tolerance on rates/utilisation.
COMPILED_TOL = dict(rtol=1e-12, atol=0.0)

BACKEND_PARAMS = [
    "numpy",
    pytest.param("compiled", marks=pytest.mark.skipif(
        compiled_provider() is None,
        reason="no compiled provider (numba not installed, C build "
               "unavailable); the fallback aliases numpy and must not "
               "pass as 'compiled'")),
]


def workload_strategy():
    return st.lists(st.sampled_from(SMALL_POOL), min_size=1, max_size=3,
                    unique=True)


def _mapping_batch(workload, num_components, seed, size):
    """Half coherent partition mappings, half fragmented uniform ones, so
    batches mix short and long stage lists."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(size):
        maker = (random_partition_mapping if i % 2 == 0
                 else uniform_block_mapping)
        out.append(maker(workload, num_components, rng))
    return out


def _assert_equivalent(scalar, batch, backend="numpy"):
    """Per-backend tolerance contract against the scalar oracle.

    ``numpy`` keeps the seed contract: identical iteration counts and
    flags, values to 1e-9.  ``compiled`` pins rates/utilisation to
    rel <= 1e-12 with identical convergence flags; iteration counts are
    required identical only on non-limit-cycle instances (below the
    burn-in), where compiler-scheduling noise cannot move the stopping
    iteration.
    """
    if backend == "numpy" or scalar.iterations < _CYCLE_BURN_IN:
        assert scalar.iterations == batch.iterations
    assert scalar.converged == batch.converged
    tol = TOL if backend == "numpy" else COMPILED_TOL
    np.testing.assert_allclose(batch.rates, scalar.rates, **tol)
    np.testing.assert_allclose(batch.component_utilisation,
                               scalar.component_utilisation, **tol)
    np.testing.assert_allclose(batch.stage_allocations,
                               scalar.stage_allocations, **TOL)
    np.testing.assert_allclose(batch.stage_demands,
                               scalar.stage_demands, **TOL)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
@settings(max_examples=20, deadline=None)
@given(workload_strategy(), st.sampled_from(sorted(PLATFORMS)),
       st.integers(0, 2**31 - 1), st.integers(1, 6))
def test_batch_matches_scalar(backend, names, platform_name, seed,
                              batch_size):
    platform = PLATFORMS[platform_name]
    workload = [get_model(n) for n in names]
    mappings = _mapping_batch(workload, platform.num_components, seed,
                              batch_size)
    demand_sets = [compute_stage_demands(workload, m, platform)
                   for m in mappings]
    batch = solve_steady_state_batch(demand_sets, len(workload), platform,
                                     backend=backend)
    assert len(batch) == batch_size
    for demands, sol in zip(demand_sets, batch):
        _assert_equivalent(
            solve_steady_state(demands, len(workload), platform), sol,
            backend)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
@settings(max_examples=15, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1),
       st.integers(1, 4), st.sampled_from([1, 3, 7, 40]))
def test_batch_matches_scalar_non_converged(backend, names, seed,
                                            batch_size, max_iter):
    """Truncated budgets: per-mapping iteration masking must freeze every
    element exactly where the scalar loop stops."""
    platform = PLATFORMS["orange_pi_5"]
    workload = [get_model(n) for n in names]
    mappings = _mapping_batch(workload, platform.num_components, seed,
                              batch_size)
    demand_sets = [compute_stage_demands(workload, m, platform)
                   for m in mappings]
    batch = solve_steady_state_batch(demand_sets, len(workload), platform,
                                     max_iter=max_iter, backend=backend)
    for demands, sol in zip(demand_sets, batch):
        _assert_equivalent(
            solve_steady_state(demands, len(workload), platform,
                               max_iter=max_iter), sol, backend)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_empty_demand_sets_mixed_into_batch(backend):
    platform = PLATFORMS["orange_pi_5"]
    workload = [get_model("alexnet"), get_model("mobilenet")]
    mapping = uniform_block_mapping(workload, platform.num_components,
                                    np.random.default_rng(0))
    demands = compute_stage_demands(workload, mapping, platform)
    batch = solve_steady_state_batch([[], demands, []], len(workload),
                                     platform, backend=backend)
    for sol in (batch[0], batch[2]):
        assert sol.converged
        assert sol.iterations == 0
        assert sol.stage_allocations.size == 0
        np.testing.assert_array_equal(sol.rates, np.zeros(len(workload)))
    _assert_equivalent(solve_steady_state(demands, len(workload), platform),
                       batch[1], backend)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_all_empty_and_zero_batches(backend):
    platform = PLATFORMS["orange_pi_5"]
    assert solve_steady_state_batch([], 2, platform, backend=backend) == []
    batch = solve_steady_state_batch([[], []], 2, platform, backend=backend)
    assert len(batch) == 2 and all(s.converged for s in batch)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_cycle_resolved_mappings_match(backend):
    """A batch known to contain non-trivial convergence behaviour (long
    fixed points and the 800-iteration cap) stays equivalent."""
    platform = PLATFORMS["orange_pi_5"]
    workload = [get_model(n)
                for n in ("squeezenet_v2", "inception_v4", "resnet50")]
    rng = np.random.default_rng(0)
    mappings = [random_partition_mapping(workload, 3, rng)
                for _ in range(16)]
    demand_sets = [compute_stage_demands(workload, m, platform)
                   for m in mappings]
    scalars = [solve_steady_state(d, len(workload), platform)
               for d in demand_sets]
    assert {s.iterations for s in scalars} != {1}  # non-trivial runs
    for scalar, sol in zip(
            scalars,
            solve_steady_state_batch(demand_sets, len(workload), platform,
                                     backend=backend)):
        _assert_equivalent(scalar, sol, backend)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
def test_simulate_batch_matches_simulate(backend):
    platform = PLATFORMS["orange_pi_5"]
    workload = [get_model(n) for n in ("alexnet", "resnet12")]
    mappings = _mapping_batch(workload, platform.num_components, 5, 6)
    batch = simulate_batch(workload, mappings, platform, backend=backend)
    tol = TOL if backend == "numpy" else COMPILED_TOL
    for mapping, got in zip(mappings, batch):
        want = simulate(workload, mapping, platform)
        np.testing.assert_allclose(got.rates, want.rates, **tol)
        np.testing.assert_allclose(got.ideal_rates, want.ideal_rates, **TOL)
        assert got.workload_names == want.workload_names
    assert simulate_batch(workload, [], platform, backend=backend) == []


def test_unknown_backend_rejected():
    """Typos must raise, not silently run numpy."""
    platform = PLATFORMS["orange_pi_5"]
    with pytest.raises(ValueError, match="unknown solver backend"):
        solve_steady_state_batch([[]], 1, platform, backend="fortran")
