"""Property tests: fused estimator-path batching is equivalent to the
scalar reference over arbitrary workloads and mapping batches.

The learned-path analogue of ``test_batch_equivalence.py``: the fast path
(:func:`repro.mapping.build_q_tensor_batch` feeding
:meth:`EstimatorPredictor.predict_batch`) must *bit*-match per-mapping
Q-tensor assembly — same scatter, same bucket means, same float32 cast —
so a batched candidate roster scores exactly as the stacked scalar
assemblies would.  (The forward pass itself is shared, so Q-bit equality
is what pins the whole path.)
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EstimatorPredictor
from repro.estimator import EstimatorConfig, ThroughputEstimator
from repro.mapping import (
    build_q_tensor,
    build_q_tensor_batch,
    random_partition_mapping,
    uniform_block_mapping,
)
from repro.vqvae import EmbeddingCache, LayerVQVAE
from repro.zoo import get_model

#: Mixes short models, a >96-layer model (bucket averaging) and a
#: <96-layer model (zero padding), so resampling hits all three regimes.
SMALL_POOL = ("alexnet", "squeezenet_v2", "mobilenet", "resnet50",
              "densenet121")

SMALL_CFG = EstimatorConfig(max_dnns=5, max_layers=48, stem_channels=8,
                            block_channels=(8, 12, 16), attn_dim=8,
                            decoder_dim=12)

_EMBEDDER = EmbeddingCache(LayerVQVAE(np.random.default_rng(0)))
_ESTIMATOR = ThroughputEstimator(np.random.default_rng(1), SMALL_CFG)
_PREDICTOR = EstimatorPredictor(_ESTIMATOR, _EMBEDDER)


def workload_strategy():
    return st.lists(st.sampled_from(SMALL_POOL), min_size=1, max_size=4,
                    unique=True)


def _mapping_batch(workload, num_components, seed, size):
    """Half coherent partition mappings, half fragmented uniform ones."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(size):
        maker = (random_partition_mapping if i % 2 == 0
                 else uniform_block_mapping)
        out.append(maker(workload, num_components, rng))
    return out


@settings(max_examples=20, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1), st.integers(1, 8),
       st.sampled_from([16, 48, 200]))
def test_q_batch_matches_scalar(names, seed, batch_size, max_layers):
    """Fused Q assembly == stacked scalar assemblies, bit for bit, across
    the padding (n < max_layers) and bucket-averaging (n > max_layers)
    regimes — at ``max_layers=16`` every pool model buckets, at 200 every
    model pads, at 48 the batch mixes both."""
    workload = [get_model(n) for n in names]
    mappings = _mapping_batch(workload, 3, seed, batch_size)
    embeddings = _EMBEDDER.for_workload(workload)
    batch = build_q_tensor_batch(workload, mappings, embeddings, 3, 5,
                                 max_layers)
    scalar = np.stack([
        build_q_tensor(workload, m, embeddings, 3, 5, max_layers)
        for m in mappings
    ])
    np.testing.assert_array_equal(batch, scalar)


@settings(max_examples=10, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1), st.integers(1, 8))
def test_predict_batch_matches_scalar_assembly(names, seed, batch_size):
    """``predict_batch`` == the scalar-assembly reference (per-mapping
    ``build_q_tensor``, stacked, one shared forward pass), bit for bit —
    the contract the acceptance criterion names."""
    workload = [get_model(n) for n in names]
    mappings = _mapping_batch(workload, 3, seed, batch_size)
    got = _PREDICTOR.predict_batch(workload, mappings)
    embeddings = _EMBEDDER.for_workload(workload)
    q = np.stack([
        build_q_tensor(workload, m, embeddings, SMALL_CFG.num_components,
                       SMALL_CFG.max_dnns, SMALL_CFG.max_layers)
        for m in mappings
    ]).astype(np.float32)
    want = _ESTIMATOR.predict_rates(q)[:, : len(workload)]
    np.testing.assert_array_equal(got, want)


@settings(max_examples=8, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_predict_batch_close_to_looped_predict(names, seed):
    """Scoring the roster in one batch agrees with per-mapping ``predict``
    calls to solver precision.  (Exact bit equality across *different
    forward batch shapes* is not guaranteed — BLAS blocking may vary with
    the batch dimension — which is why the bit contract above fixes the
    assembly, not the batch shape.)"""
    workload = [get_model(n) for n in names]
    mappings = _mapping_batch(workload, 3, seed, 6)
    batched = _PREDICTOR.predict_batch(workload, mappings)
    looped = np.concatenate(
        [_PREDICTOR.predict(workload, [m]) for m in mappings])
    np.testing.assert_allclose(batched, looped, rtol=1e-5, atol=1e-6)


@settings(max_examples=8, deadline=None)
@given(workload_strategy(), st.integers(0, 2**31 - 1))
def test_batch_shape_divergence_pinned(names, seed):
    """Carried-item contract: the *same* mapping scored inside rosters of
    different sizes may differ — BLAS kernels block the batch dimension
    differently — but only at rounding order.  The divergence is pinned
    at rel <= 1e-12 (observed ~1e-15 on this estimator; a batch-invariant
    matmul kernel would make it exactly zero, see ROADMAP).  This is the
    explicit tolerance the loose ``rtol=1e-5`` check above folklore'd:
    scores are batch-shape-stable to 12 digits, not bit-identical.
    """
    workload = [get_model(n) for n in names]
    mappings = _mapping_batch(workload, 3, seed, 6)
    full = _PREDICTOR.predict_batch(workload, mappings)
    for step in (1, 2, 3):
        split = np.concatenate([
            _PREDICTOR.predict_batch(workload, mappings[i:i + step])
            for i in range(0, len(mappings), step)
        ])
        np.testing.assert_allclose(split, full, rtol=1e-12, atol=1e-15)


def test_empty_and_oversized_batches():
    workload = [get_model("alexnet")]
    assert _PREDICTOR.predict_batch(workload, []).shape == (0, 1)
    big = [get_model(n) for n in SMALL_POOL] + [get_model("vgg16")]
    with pytest.raises(ValueError, match="exceeds estimator capacity"):
        _PREDICTOR.predict_batch(big, [])


def test_out_of_range_component_rejected_clearly():
    """Divergence from the scalar reference, by design: an out-of-range
    component index (a caller bug) raises a clear ValueError here instead
    of the scalar path's silent zero-drop / an opaque IndexError."""
    from repro.mapping import Mapping

    model = get_model("alexnet")
    bad = Mapping((tuple(5 for _ in range(model.num_blocks)),))
    with pytest.raises(ValueError, match="component indices must be in"):
        build_q_tensor_batch([model], [bad], _EMBEDDER.for_workload([model]),
                             3, 5, 48)
