"""Unit tests for the :mod:`repro.obs` telemetry subsystem.

The cross-cutting contracts — report bit-identity with the recorder on
and off, worker-count-independent merging, trace round-trips over
arbitrary op streams — live in ``tests/property/test_obs_properties.py``;
here the pieces are pinned individually: registry validation, histogram
bucketing, span retention, segment aggregation, merge semantics, the
JSONL export format, and the ``tools/trace_summary.py`` CLI.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import (HISTOGRAM_EDGES, METRICS, NULL_RECORDER,
                       SCHEMA_VERSION, SPANS, TelemetryRecorder,
                       export_segments, merge_snapshots, read_trace,
                       write_trace)
from repro.obs.registry import (ADMISSION_VERDICT, COUNTER, GAUGE, HISTOGRAM,
                                LIVE_SESSIONS, QUEUE_DEPTH, QUEUE_WAIT_S,
                                REPLAN_DECISION_S, SPAN_REPLAN)

REPO_ROOT = Path(__file__).resolve().parents[1]

SEG_KEY = (("alexnet",), ((0, 0, 1),), (2.5,))


def _load_trace_summary():
    spec = importlib.util.spec_from_file_location(
        "trace_summary", REPO_ROOT / "tools" / "trace_summary.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRegistry:
    def test_every_metric_is_self_describing(self):
        for name, metric in METRICS.items():
            assert metric.name == name
            assert metric.kind in (COUNTER, GAUGE, HISTOGRAM)
            assert metric.description

    def test_span_names_disjoint_from_metrics(self):
        assert not SPANS & set(METRICS)

    def test_unregistered_metric_rejected(self):
        recorder = TelemetryRecorder()
        with pytest.raises(KeyError):
            recorder.count("no.such.metric")
        with pytest.raises(KeyError):
            recorder.span("no.such.span", 0.0, 0.0)

    def test_kind_mismatch_rejected(self):
        recorder = TelemetryRecorder()
        with pytest.raises(TypeError):
            recorder.count(QUEUE_DEPTH)          # a gauge
        with pytest.raises(TypeError):
            recorder.observe(ADMISSION_VERDICT, 1.0)   # a counter
        with pytest.raises(TypeError):
            recorder.gauge(QUEUE_WAIT_S, 0.0, 1.0)     # a histogram


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.count(ADMISSION_VERDICT)
        NULL_RECORDER.gauge(QUEUE_DEPTH, 0.0, 1.0)
        NULL_RECORDER.observe(QUEUE_WAIT_S, 1.0)
        NULL_RECORDER.span(SPAN_REPLAN, 0.0, 0.1)
        NULL_RECORDER.segment(SEG_KEY, 1.0)
        assert NULL_RECORDER.snapshot() is None


class TestTelemetryRecorder:
    def test_counters_accumulate_by_label(self):
        recorder = TelemetryRecorder()
        recorder.count(ADMISSION_VERDICT, label="gold/admit")
        recorder.count(ADMISSION_VERDICT, 2.0, label="gold/admit")
        recorder.count(ADMISSION_VERDICT, label="bronze/reject")
        snap = recorder.snapshot()
        assert snap.counter(ADMISSION_VERDICT, "gold/admit") == 3.0
        assert snap.counter_total(ADMISSION_VERDICT) == 4.0
        assert snap.counter(ADMISSION_VERDICT, "absent") == 0.0

    def test_gauge_last_write_wins(self):
        recorder = TelemetryRecorder()
        recorder.gauge(LIVE_SESSIONS, 1.0, 3.0)
        recorder.gauge(LIVE_SESSIONS, 2.0, 1.0)
        assert recorder.snapshot().gauge_value(LIVE_SESSIONS) == 1.0
        assert recorder.snapshot().gauge_value(QUEUE_DEPTH) is None

    def test_histogram_bucketing_and_stats(self):
        recorder = TelemetryRecorder()
        values = [1e-5, 1e-4, 0.5, 3.0, 1e5]    # below, first edge,
        for v in values:                        # interior x2, above
            recorder.observe(QUEUE_WAIT_S, v)
        ((name, label, state),) = recorder.snapshot().histograms
        assert (name, label) == (QUEUE_WAIT_S, "")
        assert state.count == 5
        assert state.total == pytest.approx(sum(values))
        assert (state.min_value, state.max_value) == (1e-5, 1e5)
        assert len(state.buckets) == len(HISTOGRAM_EDGES) + 1
        assert sum(state.buckets) == 5
        assert state.buckets[0] == 2        # 1e-5 and the 1e-4 edge itself
        assert state.buckets[-1] == 1       # 1e5 overflows the ladder

    def test_span_retention_keeps_slowest(self):
        recorder = TelemetryRecorder(where="w", max_spans=3)
        for i in range(200):
            recorder.span(SPAN_REPLAN, float(i), 0.01 * (i % 7),
                          {"kind": "full"})
        snap = recorder.snapshot()
        assert len(snap.spans) == 3
        assert all(s.duration_s == 0.06 for s in snap.spans)
        assert [s.t_s for s in snap.spans] == [6.0, 13.0, 20.0]
        # Exact totals survive retention.
        ((name, count, total),) = snap.span_stats
        assert (name, count) == (SPAN_REPLAN, 200)
        assert total == pytest.approx(sum(0.01 * (i % 7)
                                          for i in range(200)))

    def test_segments_aggregate_by_plan(self):
        recorder = TelemetryRecorder()
        other = (("alexnet", "mobilenet"), ((0, 0, 1), (1, 1, 0)), (2.0, 1.0))
        recorder.segment(SEG_KEY, 2.0)
        recorder.segment(other, 1.5)
        recorder.segment(SEG_KEY, 3.0)
        recorder.segment(None, 99.0)        # no deployed mapping: skipped
        recorder.segment(SEG_KEY, 0.0)      # zero-length: skipped
        snap = recorder.snapshot()
        assert len(snap.segments) == 2
        by_key = {(s.workload, s.assignments, s.rates): s.duration_s
                  for s in snap.segments}
        assert by_key[SEG_KEY] == 5.0
        assert by_key[other] == 1.5
        exported = export_segments(snap)
        assert {tuple(e["workload"]) for e in exported} \
            == {("alexnet",), ("alexnet", "mobilenet")}
        assert all(set(e) == {"workload", "assignments", "rates",
                              "duration_s"} for e in exported)

    def test_snapshot_is_picklable_and_comparable(self):
        import pickle
        recorder = TelemetryRecorder(where="node0")
        recorder.count(ADMISSION_VERDICT, label="gold/admit")
        recorder.span(SPAN_REPLAN, 1.0, 0.04, {"kind": "warm"})
        snap = recorder.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert snap == recorder.snapshot()


class TestMerge:
    def test_merge_sums_and_resolves_gauges(self):
        a, b = TelemetryRecorder(where="a"), TelemetryRecorder(where="b")
        a.count(ADMISSION_VERDICT, label="gold/admit")
        b.count(ADMISSION_VERDICT, 2.0, label="gold/admit")
        a.gauge(LIVE_SESSIONS, 5.0, 2.0)
        b.gauge(LIVE_SESSIONS, 3.0, 9.0)    # earlier: loses
        a.observe(REPLAN_DECISION_S, 0.04)
        b.observe(REPLAN_DECISION_S, 0.05)
        a.segment(SEG_KEY, 1.0)
        b.segment(SEG_KEY, 2.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()], where="fleet")
        assert merged.where == "fleet"
        assert merged.counter(ADMISSION_VERDICT, "gold/admit") == 3.0
        assert merged.gauge_value(LIVE_SESSIONS) == 2.0
        ((_, _, hist),) = merged.histograms
        assert hist.count == 2
        assert merged.segments[0].duration_s == 3.0

    def test_gauge_tie_later_snapshot_wins(self):
        a, b = TelemetryRecorder(where="a"), TelemetryRecorder(where="b")
        a.gauge(LIVE_SESSIONS, 4.0, 1.0)
        b.gauge(LIVE_SESSIONS, 4.0, 7.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged.gauge_value(LIVE_SESSIONS) == 7.0

    def test_merge_order_is_callers_order(self):
        """The fold is input-ordered — the determinism the runner relies
        on when it passes node snapshots in fleet order."""
        a, b = TelemetryRecorder(where="a"), TelemetryRecorder(where="b")
        a.span(SPAN_REPLAN, 1.0, 0.04)
        b.span(SPAN_REPLAN, 1.0, 0.04)
        ab = merge_snapshots([a.snapshot(), b.snapshot()], where="m")
        ab2 = merge_snapshots([a.snapshot(), b.snapshot()], where="m")
        assert ab == ab2
        assert [s.where for s in ab.spans] == ["a", "b"]


class TestExport:
    def test_header_carries_schema_and_version(self, tmp_path):
        recorder = TelemetryRecorder(where="x")
        recorder.count(ADMISSION_VERDICT, label="gold/admit")
        path = tmp_path / "t.jsonl"
        count = write_trace(recorder.snapshot(), path)
        lines = path.read_text().strip().split("\n")
        assert count == len(lines) - 1      # header excluded from the count
        header = json.loads(lines[0])
        assert header["schema"] == "repro.obs.trace"
        assert header["version"] == SCHEMA_VERSION
        assert all("type" in json.loads(line) for line in lines[1:])

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "other", "version": 1}) + "\n")
        with pytest.raises(ValueError):
            read_trace(path)
        path.write_text(json.dumps(
            {"schema": "repro.obs.trace", "version": SCHEMA_VERSION + 1,
             "where": "", "max_spans": 64}) + "\n")
        with pytest.raises(ValueError):
            read_trace(path)
        path.write_text("")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_round_trip(self, tmp_path):
        recorder = TelemetryRecorder(where="rt", max_spans=8)
        recorder.count(ADMISSION_VERDICT, 3.0, label="silver/queue")
        recorder.gauge(QUEUE_DEPTH, 2.25, 4.0)
        recorder.observe(QUEUE_WAIT_S, 0.125)
        recorder.span(SPAN_REPLAN, 1.5, 0.04, {"kind": "full", "dnns": 2})
        recorder.segment(SEG_KEY, 6.5)
        snap = recorder.snapshot()
        path = tmp_path / "t.jsonl"
        write_trace(snap, path)
        assert read_trace(path) == snap


class TestTraceSummaryCli:
    def _trace(self, tmp_path):
        recorder = TelemetryRecorder(where="cli")
        for label in ("gold/admit", "gold/admit", "gold/queue",
                      "bronze/reject", "silver/preempt"):
            recorder.count(ADMISSION_VERDICT, label=label)
        recorder.span(SPAN_REPLAN, 10.0, 0.04, {"kind": "full"})
        recorder.span(SPAN_REPLAN, 20.0, 0.08, {"kind": "warm"})
        path = tmp_path / "t.jsonl"
        write_trace(recorder.snapshot(), path)
        return path

    def test_summary_sections(self, tmp_path, capsys):
        cli = _load_trace_summary()
        assert cli.main([str(self._trace(tmp_path)), "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "trace from cli" in out
        assert "serve.admission.verdict" in out
        # Funnel: per-tier rows with preempt counting as admission.
        assert "gold" in out and "admit rate 67%" in out
        assert "silver" in out and "admit rate 100%" in out
        assert "bronze" in out and "admit rate 0%" in out
        # top 1 slowest span only
        assert out.count("serve.replan") == 1
        assert "kind=warm" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        cli = _load_trace_summary()
        assert cli.main([str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestExportSegments:
    """The sorted-output contract fine-tuning relies on (see
    repro.estimator.finetune): rows come back in one canonical order no
    matter how the snapshot was assembled."""

    OTHER = (("alexnet", "mobilenet"), ((0, 0, 1), (1, 1, 0)), (2.0, 1.0))

    def _recorders(self):
        a, b = TelemetryRecorder(where="a"), TelemetryRecorder(where="b")
        a.segment(self.OTHER, 1.5)
        a.segment(SEG_KEY, 2.0)
        b.segment(SEG_KEY, 3.0)
        b.segment((("squeezenet",), ((1, 0, 1),), (0.5,)), 4.0)
        return a, b

    def test_merge_order_does_not_change_export(self):
        a, b = self._recorders()
        ab = export_segments(merge_snapshots([a.snapshot(), b.snapshot()]))
        ba = export_segments(merge_snapshots([b.snapshot(), a.snapshot()]))
        assert ab == ba
        keys = [(tuple(r["workload"]),
                 tuple(tuple(row) for row in r["assignments"]),
                 tuple(r["rates"])) for r in ab]
        assert keys == sorted(keys)

    def test_recording_order_does_not_change_export(self):
        a, _ = self._recorders()
        flipped = TelemetryRecorder(where="a")
        flipped.segment(SEG_KEY, 2.0)
        flipped.segment(self.OTHER, 1.5)
        assert export_segments(a.snapshot()) \
            == export_segments(flipped.snapshot())

    def test_empty_snapshot_exports_nothing(self):
        assert export_segments(TelemetryRecorder().snapshot()) == []
