"""Unit tests for experiment scaffolding that need no trained artifacts."""

import numpy as np
import pytest

from repro.experiments.common import (
    PRESETS,
    ExperimentContext,
    ExperimentResult,
    sample_mix,
)
from repro.experiments.table1_features import FEATURES


class TestPresets:
    def test_three_presets_registered(self):
        assert set(PRESETS) == {"tiny", "fast", "paper"}

    def test_paper_preset_matches_published_sizes(self):
        paper = PRESETS["paper"]
        assert paper.dataset_samples == 10_000
        assert paper.estimator_epochs == 50
        assert paper.motivation_mappings == 300
        assert paper.mixes_per_size == 6

    def test_scaling_monotone(self):
        tiny, fast, paper = (PRESETS[n] for n in ("tiny", "fast", "paper"))
        assert tiny.dataset_samples < fast.dataset_samples < paper.dataset_samples
        assert tiny.mcts_iterations < fast.mcts_iterations <= paper.mcts_iterations


class TestSampleMix:
    def test_distinct_models(self):
        rng = np.random.default_rng(0)
        for size in (3, 4, 5):
            mix = sample_mix(rng, size)
            assert len(mix) == size
            assert len({m.name for m in mix}) == size

    def test_seeded_reproducibility(self):
        a = [m.name for m in sample_mix(np.random.default_rng(5), 4)]
        b = [m.name for m in sample_mix(np.random.default_rng(5), 4)]
        assert a == b


class TestExperimentResult:
    def test_save_writes_csv_and_txt(self, tmp_path):
        result = ExperimentResult(
            experiment="demo", headers=["a", "b"],
            rows=[[1, 2.5]], text="hello",
        )
        result.save(tmp_path)
        assert (tmp_path / "demo.csv").read_text().startswith("a,b")
        assert (tmp_path / "demo.txt").read_text().strip() == "hello"


class TestTable1:
    def test_rankmap_uniquely_priority_aware_and_starvation_free(self):
        assert FEATURES["priority_aware"] == {
            "mosaic": False, "odmdef": False, "ga": False,
            "omniboost": False, "rankmap": True,
        }
        assert FEATURES["no_starvation"]["rankmap"]
        assert not any(
            v for k, v in FEATURES["no_starvation"].items() if k != "rankmap"
        )

    def test_matches_paper_table_row_count(self):
        assert len(FEATURES) == 7  # the paper's seven feature rows


class TestContextConstruction:
    def test_preset_by_name_or_object(self, tmp_path):
        ctx1 = ExperimentContext(preset="tiny", results_dir=tmp_path)
        ctx2 = ExperimentContext(preset=PRESETS["tiny"], results_dir=tmp_path)
        assert ctx1.preset == ctx2.preset

    def test_unknown_preset_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            ExperimentContext(preset="huge", results_dir=tmp_path)

    def test_mcts_config_offsets_seed(self, tmp_path):
        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path)
        assert ctx.mcts_config(10).seed != ctx.mcts_config(20).seed
