"""Tests for the multi-node fleet dispatcher (routing, dispatch, report)."""

import math

import numpy as np
import pytest

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import (dvfs_ladder, jetson_class, jetson_class_power,
                      orange_pi_5, orange_pi_5_power)
from repro.search import MCTSConfig
from repro.serve import AdmissionConfig, ServeConfig, build_replan_policy
from repro.serve.fleet import (
    ROUTING_POLICIES,
    DispatchPlan,
    FleetNode,
    FleetPowerConfig,
    FleetPowerReport,
    LeastJoulesRouter,
    LeastLoadedRouter,
    NodeSpec,
    NodeView,
    PowerSegment,
    RoundRobinRouter,
    TierAffinityRouter,
    build_routing_policy,
    jain_index,
    node_speed,
    plan_dispatch,
    serve_fleet,
)
from repro.workloads import (
    SessionRequest,
    TraceConfig,
    fleet_demand_config,
    sample_session_requests,
    split_session_requests,
)

POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")


def request(sid, arrival, duration, tier="gold", shift=None):
    return SessionRequest(session_id=sid, arrival_s=arrival,
                          duration_s=duration, tier=tier, tier_shift=shift)


def views(*specs):
    return [NodeView(index=i, name=f"n{i}", capacity=cap, speed=speed,
                     est_live=live)
            for i, (cap, speed, live) in enumerate(specs)]


# --------------------------------------------------------------- routing
class TestRouting:
    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        nodes = views((2, 1.0, 0), (2, 1.0, 0), (2, 1.0, 0))
        picks = [router.choose("gold", nodes) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_dead_nodes(self):
        router = RoundRobinRouter()
        alive = views((2, 1.0, 0), (2, 1.0, 0))      # node 2 already dead
        picks = [router.choose("gold", alive) for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_least_loaded_weighs_speed(self):
        router = LeastLoadedRouter()
        # One free slot on a fast node beats two on a slow one.
        nodes = views((3, 1.0, 1), (2, 4.0, 1))
        assert router.choose("bronze", nodes) == 1

    def test_least_loaded_prefers_lowest_index_on_tie(self):
        router = LeastLoadedRouter()
        nodes = views((2, 1.0, 1), (2, 1.0, 1))
        assert router.choose("gold", nodes) == 0

    def test_least_loaded_saturated_picks_least_overloaded(self):
        router = LeastLoadedRouter()
        nodes = views((2, 1.0, 4), (2, 1.0, 3))
        assert router.choose("gold", nodes) == 1

    def test_least_loaded_overload_favours_fast_drain(self):
        """Regression: under saturation the deficit is divided by speed,
        not multiplied — a fast node 2 over capacity clears its backlog
        sooner than a slow node 2 over."""
        router = LeastLoadedRouter()
        nodes = views((2, 4.0, 4), (2, 1.0, 4))
        assert router.choose("gold", nodes) == 0
        # A free slot anywhere still beats every saturated node.
        with_free = views((2, 4.0, 4), (2, 1.0, 1))
        assert router.choose("gold", with_free) == 1

    def test_tier_affinity_reserves_fastest_for_gold(self):
        router = TierAffinityRouter(reserve_fraction=1 / 3)
        nodes = views((2, 1.0, 0), (2, 5.0, 0), (2, 1.0, 0))
        assert router.choose("gold", nodes) == 1
        assert router.choose("bronze", nodes) in (0, 2)

    def test_tier_affinity_bronze_spills_only_when_saturated(self):
        router = TierAffinityRouter(reserve_fraction=1 / 3)
        full = views((1, 1.0, 1), (2, 5.0, 0), (1, 1.0, 1))
        assert router.choose("bronze", full) == 1   # unreserved saturated
        free = views((1, 1.0, 0), (2, 5.0, 0), (1, 1.0, 1))
        assert router.choose("bronze", free) == 0

    def test_tier_affinity_validates_config(self):
        with pytest.raises(ValueError):
            TierAffinityRouter(reserve_fraction=0.0)
        with pytest.raises(ValueError):
            TierAffinityRouter(gold_tiers=())

    def test_roster_builds_fresh_instances(self):
        assert set(ROUTING_POLICIES) == {"round_robin", "least_loaded",
                                         "least_joules",
                                         "tier_affinity",
                                         "tier_affinity_preempt",
                                         "pressure_feedback"}
        a = build_routing_policy("round_robin")
        b = build_routing_policy("round_robin")
        assert a is not b
        with pytest.raises(ValueError, match="unknown routing policy"):
            build_routing_policy("nope")


# -------------------------------------------------------------- dispatch
class TestPlanDispatch:
    def _specs(self, n=3, capacity=2, fail=None):
        return [NodeSpec(name=f"n{i}", capacity=capacity,
                         speed=1.0 + 0.5 * i,
                         fail_at_s=(fail if i == 0 else None))
                for i in range(n)]

    def test_round_robin_splits_evenly(self):
        requests = [request(i, 10.0 * i, 5.0) for i in range(6)]
        plan = plan_dispatch(requests, self._specs(), "round_robin", 100.0)
        assert plan.routed == (2, 2, 2)
        assert plan.re_dispatched == 0 and plan.lost == ()

    def test_every_request_routed_exactly_once(self):
        rng = np.random.default_rng(3)
        requests = sample_session_requests(
            rng, TraceConfig(horizon_s=400.0, arrival_rate_per_s=1 / 10,
                             mean_session_s=60.0))
        plan = plan_dispatch(requests, self._specs(), "least_loaded", 400.0)
        routed_ids = sorted(r.session_id for node in plan.node_requests
                            for r in node)
        assert routed_ids == sorted(r.session_id for r in requests)

    def test_deterministic_per_key(self):
        requests = [request(i, 3.0 * i, 40.0) for i in range(20)]
        plans = [plan_dispatch(requests, self._specs(), "tier_affinity",
                               200.0) for _ in range(2)]
        assert plans[0] == plans[1]

    def test_failure_drains_live_sessions(self):
        # Both sessions live on node 0 when it dies at t=50.
        requests = [request(0, 0.0, 100.0), request(1, 10.0, 100.0)]
        specs = [NodeSpec(name="dead", capacity=4, fail_at_s=50.0),
                 NodeSpec(name="alive", capacity=4)]
        plan = plan_dispatch(requests, specs, "round_robin", 200.0)
        assert plan.re_dispatched >= 1
        moved = [r for r in plan.node_requests[1] if r.arrival_s == 50.0]
        assert moved, "re-dispatched continuations arrive at the failure time"
        for r in moved:
            original = requests[r.session_id]
            assert r.duration_s == pytest.approx(
                original.arrival_s + original.duration_s - 50.0)

    def test_out_of_horizon_demand_is_recorded(self):
        """Regression: demand arriving after the horizon must be counted,
        not silently vanish from the plan."""
        requests = [request(0, 10.0, 5.0), request(1, 150.0, 5.0)]
        plan = plan_dispatch(requests, self._specs(), "round_robin", 100.0)
        assert sum(plan.routed) == 1
        assert [r.session_id for r in plan.out_of_horizon] == [1]

    def test_failure_with_no_survivors_loses_sessions(self):
        requests = [request(0, 0.0, 100.0), request(1, 60.0, 10.0)]
        specs = [NodeSpec(name="only", capacity=4, fail_at_s=50.0)]
        plan = plan_dispatch(requests, specs, "round_robin", 200.0)
        # Session 0 was live at the failure; session 1 arrived after it.
        assert plan.re_dispatched == 1
        assert len(plan.lost) == 2

    def test_fired_tier_shift_bakes_into_redispatch(self):
        req = request(0, 0.0, 100.0, tier="bronze", shift=(10.0, "gold"))
        specs = [NodeSpec(name="dead", capacity=4, fail_at_s=50.0),
                 NodeSpec(name="alive", capacity=4)]
        plan = plan_dispatch([req], specs, "round_robin", 200.0)
        moved = plan.node_requests[1][0]
        assert moved.tier == "gold" and moved.tier_shift is None

    def test_pending_tier_shift_keeps_remaining_offset(self):
        req = request(0, 0.0, 100.0, tier="bronze", shift=(80.0, "gold"))
        specs = [NodeSpec(name="dead", capacity=4, fail_at_s=50.0),
                 NodeSpec(name="alive", capacity=4)]
        plan = plan_dispatch([req], specs, "round_robin", 200.0)
        moved = plan.node_requests[1][0]
        assert moved.tier == "bronze"
        assert moved.tier_shift == (pytest.approx(30.0), "gold")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(name="x", capacity=0)
        with pytest.raises(ValueError):
            NodeSpec(name="x", capacity=1, speed=0.0)
        with pytest.raises(ValueError):
            NodeSpec(name="x", capacity=1, fail_at_s=0.0)
        with pytest.raises(ValueError):
            plan_dispatch([], [], "round_robin", 100.0)
        with pytest.raises(ValueError):
            plan_dispatch([], self._specs(), "round_robin", 0.0)

    def test_node_speed_orders_platforms(self):
        slow = node_speed(orange_pi_5(), POOL)
        fast = node_speed(jetson_class(), POOL)
        assert 0 < slow < fast
        with pytest.raises(ValueError):
            node_speed(orange_pi_5(), ())


# ------------------------------------------------------------ the fleet
def fleet_nodes(n=3, capacity=2, fail=None, horizon=240.0):
    nodes = []
    for i in range(n):
        platform = orange_pi_5() if i % 2 == 0 else jetson_class()
        manager = RankMap(
            platform, OraclePredictor(platform),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=6, rollouts_per_leaf=2,
                                          seed=i)))
        nodes.append(FleetNode(
            spec=NodeSpec(name=f"n{i}", capacity=capacity,
                          speed=node_speed(platform, POOL),
                          fail_at_s=(fail if i == 0 else None)),
            platform=platform,
            policy=build_replan_policy("warm", manager),
            config=ServeConfig(horizon_s=horizon,
                               admission=AdmissionConfig(capacity=capacity),
                               pool=POOL, seed=i)))
    return nodes


def demand(horizon=240.0, seed=0, rate=1 / 8):
    return sample_session_requests(
        np.random.default_rng(seed),
        TraceConfig(horizon_s=horizon, arrival_rate_per_s=rate,
                    mean_session_s=90.0))


class TestServeFleet:
    def test_inline_fleet_end_to_end(self):
        # A 300 s demand against a 240 s fleet: the tail is out of horizon
        # but still accounted, matching the single-node ledger.
        requests = demand(horizon=300.0)
        report = serve_fleet(requests, fleet_nodes(), "least_loaded")
        assert report.routing == "least_loaded"
        assert len(report.nodes) == 3
        assert report.arrivals == len(requests)
        assert report.out_of_horizon == sum(
            1 for r in requests if r.arrival_s >= 240.0)
        assert report.admitted > 0
        assert report.delivered_inferences > 0
        assert 0.0 < report.node_fairness <= 1.0
        assert 0.0 < report.session_fairness <= 1.0
        assert "FleetReport[least_loaded]" in report.summary()

    def test_failed_node_report_truncates_at_failure(self):
        report = serve_fleet(demand(), fleet_nodes(fail=100.0),
                             "round_robin")
        failed = report.nodes[0]
        assert failed.failed_at_s == 100.0
        assert failed.report.horizon_s == 100.0
        assert all(n.report.horizon_s == 240.0 for n in report.nodes[1:])

    def test_tier_outcomes_cover_all_tiers(self):
        report = serve_fleet(demand(), fleet_nodes(), "tier_affinity")
        tiers = report.tier_outcomes()
        assert set(tiers) <= {"gold", "silver", "bronze"}
        assert sum(row["arrivals"] for row in tiers.values()) \
            == report.arrivals - report.lost - report.out_of_horizon
        for row in tiers.values():
            assert row["admitted"] <= row["arrivals"]

    def test_tier_outcomes_distinct_under_failure(self):
        """Regression: a re-dispatched session must count once per tier,
        not once per node report it appears in."""
        report = serve_fleet(demand(rate=1 / 5), fleet_nodes(fail=100.0),
                             "round_robin")
        assert report.re_dispatched > 0
        tiers = report.tier_outcomes()
        assert sum(row["arrivals"] for row in tiers.values()) \
            == report.arrivals - report.lost - report.out_of_horizon

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            serve_fleet([], [], "round_robin")


# --------------------------------------------------------------- report
class TestJainIndex:
    def test_even_is_one(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_holder_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_degenerate_inputs(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0


# ------------------------------------------------------ trace utilities
class TestTraceSplitting:
    def test_fleet_demand_scales_rate_and_cap(self):
        base = TraceConfig(horizon_s=600.0, arrival_rate_per_s=1 / 60,
                           mean_session_s=120.0, max_concurrent=3)
        scaled = fleet_demand_config(base, 4)
        assert scaled.arrival_rate_per_s == pytest.approx(4 / 60)
        assert scaled.max_concurrent == 12
        assert scaled.mean_session_s == base.mean_session_s
        with pytest.raises(ValueError):
            fleet_demand_config(base, 0)

    def test_split_round_robins_in_arrival_order(self):
        requests = [request(i, float(10 - i), 5.0) for i in range(6)]
        shards = split_session_requests(requests, 2)
        assert [r.session_id for r in shards[0]] == [5, 3, 1]
        assert [r.session_id for r in shards[1]] == [4, 2, 0]
        assert sum(len(s) for s in shards) == len(requests)
        with pytest.raises(ValueError):
            split_session_requests(requests, 0)

    def test_plan_is_plain_data(self):
        import pickle

        plan = plan_dispatch([request(0, 0.0, 5.0)],
                             [NodeSpec(name="n", capacity=1)],
                             "round_robin", 10.0)
        assert isinstance(plan, DispatchPlan)
        assert pickle.loads(pickle.dumps(plan)) == plan


# ------------------------------------------------- preemption-aware fleet
class TestPreemptAwareRouting:
    def _router(self):
        from repro.serve.fleet import PreemptAwareTierRouter

        return PreemptAwareTierRouter(reserve_fraction=1 / 3)

    def test_gold_prefers_reserved_free_slot(self):
        router = self._router()
        nodes = views((2, 1.0, 0), (2, 5.0, 0), (2, 1.0, 0))
        assert router.choose("gold", nodes) == 1

    def test_gold_avoids_eviction_by_spilling_to_unreserved(self):
        """A full reserved node would evict; a free unreserved slot is
        preferred even though tier affinity would keep gold reserved."""
        router = self._router()
        nodes = views((2, 1.0, 1), (2, 5.0, 2), (2, 1.0, 2))
        assert router.choose("gold", nodes) == 0

    def test_bronze_spills_to_reserved_free_slot(self):
        router = self._router()
        nodes = views((1, 1.0, 1), (2, 5.0, 0), (1, 1.0, 1))
        assert router.choose("bronze", nodes) == 1

    def test_saturated_fleet_falls_back_to_tier_affinity(self):
        """With no free slot anywhere the preemption is unavoidable, so
        the choice degrades to the plain tier-affinity pick."""
        from repro.serve.fleet import TierAffinityRouter

        router = self._router()
        plain = TierAffinityRouter(reserve_fraction=1 / 3)
        nodes = views((2, 1.0, 3), (2, 5.0, 2), (2, 1.0, 2))
        for tier in ("gold", "bronze"):
            assert router.choose(tier, nodes) == plain.choose(tier, nodes)


class TestFleetPreemption:
    def _preempt_fleet(self, routing="tier_affinity_preempt", fail_at=()):
        from repro.runner import DynamicScenario, FleetScenario

        nodes = tuple(DynamicScenario(
            name=f"node{i}", manager="baseline", policy="full",
            platform=("orange_pi_5" if i % 2 == 0 else "jetson_class"),
            seed=i, pool=POOL, capacity=2, queue_limit=6,
            preemption="evict_lowest_tier") for i in range(3))
        return FleetScenario(name=f"pf_{routing}", nodes=nodes,
                             routing=routing, seed=0, horizon_s=240.0,
                             arrival_rate_per_s=1 / 4, mean_session_s=90.0,
                             fail_at=fail_at)

    def test_parallel_equals_serial_with_preemption_and_failure(self):
        """Determinism regression: preemption-enabled fleets (including
        the node-failure re-dispatch path, whose continuations land on
        nodes that then evict for them) are bit-identical for 1 vs N
        workers."""
        from repro.runner import ScenarioRunner

        fleets = [self._preempt_fleet(),
                  self._preempt_fleet(fail_at=((1, 120.0),))]
        serial = ScenarioRunner(max_workers=1).run_fleet(fleets)
        parallel = ScenarioRunner(max_workers=3).run_fleet(fleets)
        assert [r.report for r in serial] == [r.report for r in parallel]
        report = serial[1].report
        assert report.re_dispatched > 0
        assert report.evictions > 0

    def test_fleet_report_rolls_up_preemption(self):
        from repro.runner import ScenarioRunner

        report = ScenarioRunner(max_workers=1).run_fleet(
            [self._preempt_fleet()])[0].report
        assert report.evictions == sum(n.report.evictions
                                       for n in report.nodes)
        assert report.resumptions <= report.evictions
        assert 0.0 < report.eviction_fairness <= 1.0
        if report.evictions:
            assert "preemption:" in report.summary()


# ------------------------------------------------- pressure feedback loop
class TestNodePressure:
    def _report(self, **kw):
        from types import SimpleNamespace

        defaults = dict(arrivals=10, out_of_horizon=2, abandoned=2,
                        rejected=1, queued_at_horizon=3)
        defaults.update(kw)
        return SimpleNamespace(**defaults)

    def test_rates_over_observed_arrivals(self):
        from repro.serve.fleet import pressure_from_report

        pressure = pressure_from_report(self._report())
        assert pressure.queue_depth == 3
        assert pressure.abandonment_rate == pytest.approx(2 / 8)
        assert pressure.rejection_rate == pytest.approx(1 / 8)
        assert pressure.denial_rate == pytest.approx(3 / 8)

    def test_nothing_observed_is_zero_pressure(self):
        from repro.serve.fleet import pressure_from_report

        pressure = pressure_from_report(self._report(
            arrivals=2, out_of_horizon=2, abandoned=0, rejected=0,
            queued_at_horizon=1))
        assert pressure.abandonment_rate == 0.0
        assert pressure.rejection_rate == 0.0
        assert pressure.queue_depth == 1   # residual queue still counts

    def test_denial_rate_clamped(self):
        from repro.serve.fleet import NodePressure

        assert NodePressure(abandonment_rate=0.8,
                            rejection_rate=0.7).denial_rate == 1.0
        assert NodePressure().denial_rate == 0.0

    def test_fleet_pressure_keys_by_name(self):
        from repro.serve.fleet import fleet_pressure

        specs = [NodeSpec(name="a", capacity=1),
                 NodeSpec(name="b", capacity=1)]
        pressure = fleet_pressure(specs, [self._report(),
                                          self._report(queued_at_horizon=0)])
        assert set(pressure) == {"a", "b"}
        assert pressure["a"].queue_depth == 3
        assert pressure["b"].queue_depth == 0

    def test_fleet_pressure_length_mismatch_rejected(self):
        from repro.serve.fleet import fleet_pressure

        with pytest.raises(ValueError, match="specs but"):
            fleet_pressure([NodeSpec(name="a", capacity=1)], [])


class TestPressureFeedbackRouting:
    def _router(self, pressure=None):
        from repro.serve.fleet import PressureFeedbackRouter

        router = PressureFeedbackRouter()
        if pressure:
            router.observe_pressure(pressure)
        return router

    def test_no_pressure_reproduces_least_loaded(self):
        """The feedback_rounds=0 anchor: with nothing observed the policy
        is LeastLoadedRouter choice for choice."""
        plain = LeastLoadedRouter()
        scenarios = [views((3, 1.0, 1), (2, 4.0, 1)),
                     views((2, 1.0, 1), (2, 1.0, 1)),
                     views((2, 4.0, 4), (2, 1.0, 4)),
                     views((2, 4.0, 4), (2, 1.0, 1))]
        for nodes in scenarios:
            assert self._router().choose("gold", nodes) \
                == plain.choose("gold", nodes)

    def test_residual_queue_counts_as_live_load(self):
        from repro.serve.fleet import NodePressure

        nodes = views((2, 1.0, 0), (2, 1.0, 0))
        assert self._router().choose("gold", nodes) == 0   # index tie-break
        router = self._router({"n0": NodePressure(queue_depth=2)})
        assert router.choose("gold", nodes) == 1

    def test_denial_rate_discounts_speed(self):
        from repro.serve.fleet import NodePressure

        nodes = views((2, 4.0, 1), (2, 3.0, 1))
        assert self._router().choose("gold", nodes) == 0   # faster headroom
        router = self._router({"n0": NodePressure(rejection_rate=0.8)})
        assert router.choose("gold", nodes) == 1           # 4*0.2 < 3

    def test_full_denial_stays_orderable(self):
        """The 95% discount cap: a node that turned everything away keeps
        a positive adjusted speed, so saturation drain-times stay finite."""
        from repro.serve.fleet import NodePressure

        nodes = views((2, 1.0, 4), (2, 1.0, 4))
        router = self._router({"n0": NodePressure(abandonment_rate=1.0),
                               "n1": NodePressure(abandonment_rate=1.0)})
        assert router.choose("gold", nodes) in (0, 1)      # no crash

    def test_pressure_blind_policies_ignore_the_hook(self):
        from repro.serve.fleet import NodePressure

        nodes = views((2, 1.0, 0), (2, 1.0, 0))
        plain = LeastLoadedRouter()
        plain.observe_pressure({"n0": NodePressure(queue_depth=9)})
        assert plain.choose("gold", nodes) == 0


class TestServeFleetFeedback:
    def test_feedback_rounds_deterministic(self):
        requests = demand(rate=1 / 5)
        a = serve_fleet(requests, fleet_nodes(), "pressure_feedback",
                        feedback_rounds=2)
        b = serve_fleet(requests, fleet_nodes(), "pressure_feedback",
                        feedback_rounds=2)
        assert a == b
        assert a.routing == "pressure_feedback"

    def test_round_zero_matches_least_loaded_node_reports(self):
        """feedback_rounds=0 with the pressure router is bit-for-bit
        today's least_loaded dispatch (only the routing label differs)."""
        requests = demand()
        fed = serve_fleet(requests, fleet_nodes(), "pressure_feedback",
                          feedback_rounds=0)
        plain = serve_fleet(requests, fleet_nodes(), "least_loaded")
        assert [n.report for n in fed.nodes] \
            == [n.report for n in plain.nodes]

    def test_feedback_survives_node_failure(self):
        report = serve_fleet(demand(rate=1 / 5), fleet_nodes(fail=100.0),
                             "pressure_feedback", feedback_rounds=1)
        assert report.re_dispatched > 0
        assert report.nodes[0].failed_at_s == 100.0

    def test_policy_objects_cannot_iterate(self):
        """Each round needs a *fresh* policy; an instance cannot be
        rebuilt, so feedback_rounds>0 demands a roster key."""
        from repro.serve.fleet import PressureFeedbackRouter

        with pytest.raises(ValueError, match="roster key"):
            serve_fleet(demand(), fleet_nodes(), PressureFeedbackRouter(),
                        feedback_rounds=1)

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError, match="feedback_rounds"):
            serve_fleet(demand(), fleet_nodes(), "pressure_feedback",
                        feedback_rounds=-1)


# ---------------------------------------------------------------- power
def power_views(*specs):
    """(capacity, speed, est_live, marginal_watts) NodeView shorthand."""
    return [NodeView(index=i, name=f"n{i}", capacity=cap, speed=speed,
                     est_live=live, marginal_watts=watts)
            for i, (cap, speed, live, watts) in enumerate(specs)]


def fleet_ladders(n=3, multipliers=(1.0, 0.8, 0.6)):
    """Heterogeneous DVFS ladders matching the fleet_nodes platform mix."""
    return tuple(
        dvfs_ladder(orange_pi_5_power() if i % 2 == 0
                    else jetson_class_power(), multipliers)
        for i in range(n))


class TestLeastJoulesRouting:
    def test_picks_cheapest_marginal_joules(self):
        router = LeastJoulesRouter()
        # Node 1 serves the session at fewer joules: same speed, less
        # marginal draw.
        nodes = power_views((2, 1.0, 0, 4.0), (2, 1.0, 0, 1.5))
        assert router.choose("gold", nodes) == 1

    def test_joules_not_watts(self):
        router = LeastJoulesRouter()
        # Node 0 draws more but serves 4x faster: fewer joules per
        # delivered inference than the slow low-watt node.
        nodes = power_views((2, 4.0, 0, 4.0), (2, 1.0, 0, 2.0))
        assert router.choose("gold", nodes) == 0

    def test_tie_breaks_on_drain_score_then_index(self):
        router = LeastJoulesRouter()
        # Equal joules: the emptier node wins on headroom.
        nodes = power_views((2, 1.0, 1, 2.0), (3, 1.0, 0, 2.0))
        assert router.choose("gold", nodes) == 1
        # Fully symmetric: lowest index.
        even = power_views((2, 1.0, 0, 2.0), (2, 1.0, 0, 2.0))
        assert router.choose("gold", even) == 0

    def test_zero_watts_degenerates_to_least_loaded(self):
        """Power-blind views (marginal_watts=0.0) must reproduce the
        least-loaded choice — the degenerate anchor of the whole policy."""
        shapes = [((3, 1.0, 1, 0.0), (2, 4.0, 1, 0.0)),
                  ((2, 1.0, 1, 0.0), (2, 1.0, 1, 0.0)),
                  ((2, 1.0, 0, 0.0), (3, 2.0, 2, 0.0))]
        baseline = LeastLoadedRouter()
        for shape in shapes:
            nodes = power_views(*shape)
            assert LeastJoulesRouter().choose("gold", nodes) \
                == baseline.choose("gold", nodes)

    def test_saturated_falls_back_to_drain_score(self):
        router = LeastJoulesRouter()
        # No free slots anywhere: route where the backlog drains fastest,
        # exactly like least_loaded under saturation — watts are moot on
        # a node that cannot admit.
        nodes = power_views((2, 4.0, 4, 0.5), (2, 1.0, 4, 0.1))
        assert router.choose("gold", nodes) == 0

    def test_free_slot_beats_cheap_saturated_node(self):
        router = LeastJoulesRouter()
        nodes = power_views((2, 1.0, 2, 0.1), (2, 1.0, 1, 9.0))
        assert router.choose("gold", nodes) == 1


class TestFleetPowerConfig:
    def test_rejects_empty_or_flat_ladders(self):
        with pytest.raises(ValueError, match="non-empty"):
            FleetPowerConfig(ladders=((),))
        good = dvfs_ladder(orange_pi_5_power(), (1.0, 0.5))
        bad = (good[0], good[0])        # equal multipliers: not decreasing
        with pytest.raises(ValueError, match="strictly"):
            FleetPowerConfig(ladders=(bad,))

    def test_rejects_bad_cap_and_shift(self):
        ladder = dvfs_ladder(orange_pi_5_power(), (1.0,))
        with pytest.raises(ValueError, match="cap_w"):
            FleetPowerConfig(ladders=(ladder,), cap_w=0.0)
        with pytest.raises(ValueError, match="cap_shift"):
            FleetPowerConfig(ladders=(ladder,), cap_shift=(0.0, 5.0))
        with pytest.raises(ValueError, match="cap_shift"):
            FleetPowerConfig(ladders=(ladder,), cap_shift=(10.0, -1.0))
        with pytest.raises(ValueError, match="hysteresis"):
            FleetPowerConfig(ladders=(ladder,), hysteresis=1.5)

    def test_ladder_count_must_match_fleet(self):
        requests = [request(0, 1.0, 5.0)]
        specs = [NodeSpec(name="a", capacity=2), NodeSpec(name="b", capacity=2)]
        config = FleetPowerConfig(ladders=fleet_ladders(n=1))
        with pytest.raises(ValueError, match="ladders"):
            plan_dispatch(requests, specs, "least_joules", 100.0,
                          power=config)


class TestPowerLedger:
    def test_segment_over_cap_watt_seconds(self):
        seg = PowerSegment(start_s=10.0, end_s=30.0, watts=12.0, cap_w=10.0)
        assert seg.duration_s == pytest.approx(20.0)
        assert seg.over_cap_ws == pytest.approx(40.0)
        under = PowerSegment(start_s=0.0, end_s=5.0, watts=3.0, cap_w=10.0)
        assert under.over_cap_ws == 0.0

    def _report(self, segments):
        return FleetPowerReport(
            cap_w=10.0, cap_shift=None, enforced=True, node_names=("n0",),
            node_energy_ws=(sum(s.watts * s.duration_s for s in segments),),
            node_over_cap_ws=(sum(s.over_cap_ws for s in segments),),
            node_final_levels=(0,), dvfs_transitions=(), segments=segments)

    def test_over_cap_between_is_pro_rata(self):
        report = self._report((
            PowerSegment(0.0, 100.0, 15.0, 10.0),     # 500 Ws over
            PowerSegment(100.0, 200.0, 8.0, 10.0),    # under
        ))
        assert report.fleet_over_cap_ws == pytest.approx(500.0)
        # A window covering half the violating segment gets half its Ws.
        assert report.over_cap_ws_between(50.0, 150.0) \
            == pytest.approx(250.0)
        assert report.over_cap_ws_between(0.0, 200.0) \
            == pytest.approx(500.0)
        assert report.over_cap_ws_between(100.0, 200.0) == 0.0

    def test_empty_ledger_mean_watts(self):
        assert self._report(()).mean_watts == 0.0

    def test_summary_mentions_cap_and_nodes(self):
        text = self._report((PowerSegment(0.0, 10.0, 5.0, 10.0),)).summary()
        assert "PowerLedger[cap 10.0 W" in text and "n0:" in text


class TestPowerGovernedDispatch:
    def _specs(self, n=3, capacity=2, fail=None):
        return [NodeSpec(name=f"n{i}", capacity=capacity,
                         speed=1.0 + 0.5 * i,
                         fail_at_s=(fail if i == 0 else None))
                for i in range(n)]

    def _demand(self, seed=0, rate=1 / 6, horizon=240.0):
        return sample_session_requests(
            np.random.default_rng(seed),
            TraceConfig(horizon_s=horizon, arrival_rate_per_s=rate,
                        mean_session_s=90.0))

    def test_power_blind_plan_has_no_ledger(self):
        plan = plan_dispatch(self._demand(), self._specs(), "least_loaded",
                             240.0)
        assert plan.power is None and plan.shed == ()

    def test_degenerate_power_is_byte_identical_to_least_loaded(self):
        """Satellite regression: cap=inf + single DVFS state must leave
        the dispatch byte-identical to today's power-blind least_loaded —
        the governor rides along but never perturbs a routing decision."""
        requests = self._demand(rate=1 / 5)
        plain = plan_dispatch(requests, self._specs(), "least_loaded", 240.0)
        config = FleetPowerConfig(
            ladders=fleet_ladders(multipliers=(1.0,)), cap_w=math.inf)
        governed = plan_dispatch(requests, self._specs(), "least_loaded",
                                 240.0, power=config)
        assert governed.node_requests == plain.node_requests
        assert governed.routed == plain.routed
        assert governed.lost == plain.lost
        assert governed.out_of_horizon == plain.out_of_horizon
        assert governed.shed == ()
        ledger = governed.power
        assert ledger is not None
        assert ledger.fleet_over_cap_ws == 0.0
        assert ledger.dvfs_transitions == ()
        assert ledger.node_final_levels == (0, 0, 0)
        assert ledger.fleet_energy_ws > 0.0

    def test_degenerate_power_survives_node_failure(self):
        requests = self._demand(rate=1 / 5)
        specs = self._specs(fail=100.0)
        plain = plan_dispatch(requests, specs, "least_loaded", 240.0)
        governed = plan_dispatch(
            requests, specs, "least_loaded", 240.0,
            power=FleetPowerConfig(ladders=fleet_ladders(multipliers=(1.0,)),
                                   cap_w=math.inf))
        assert governed.node_requests == plain.node_requests
        assert governed.re_dispatched == plain.re_dispatched
        # The dead node stops accruing energy at its failure time: it
        # must not out-consume the always-on nodes over a 240 s horizon.
        ledger = governed.power
        assert ledger.node_energy_ws[0] < max(ledger.node_energy_ws[1:])

    def test_segments_partition_horizon(self):
        config = FleetPowerConfig(ladders=fleet_ladders(), cap_w=30.0,
                                  cap_shift=(120.0, 14.0))
        plan = plan_dispatch(self._demand(), self._specs(), "least_joules",
                             240.0, power=config)
        segments = plan.power.segments
        assert segments[0].start_s == 0.0
        assert segments[-1].end_s == pytest.approx(240.0)
        for prev, cur in zip(segments, segments[1:]):
            assert cur.start_s == pytest.approx(prev.end_s)
        assert all(s.cap_w == 30.0 for s in segments if s.end_s <= 120.0)
        assert all(s.cap_w == 14.0 for s in segments if s.start_s >= 120.0)

    def test_deterministic_per_config(self):
        config = FleetPowerConfig(ladders=fleet_ladders(), cap_w=22.0,
                                  cap_shift=(100.0, 12.0))
        plans = [plan_dispatch(self._demand(), self._specs(fail=150.0),
                               "least_joules", 240.0, power=config)
                 for _ in range(2)]
        assert plans[0] == plans[1]

    def test_brownout_enforcement_beats_cap_blind(self):
        """Dropping the cap mid-trace makes the enforced fleet throttle
        (DVFS transitions at/after the shift) and accrue no more over-cap
        watt-seconds than the cap-blind baseline, which never throttles."""
        requests = self._demand(rate=1 / 5)
        specs = self._specs()
        shift = (120.0, 12.0)
        enforced = plan_dispatch(
            requests, specs, "least_joules", 240.0,
            power=FleetPowerConfig(ladders=fleet_ladders(), cap_w=1000.0,
                                   cap_shift=shift)).power
        blind = plan_dispatch(
            requests, specs, "least_joules", 240.0,
            power=FleetPowerConfig(ladders=fleet_ladders(), cap_w=1000.0,
                                   cap_shift=shift, enforce=False)).power
        # Pre-shift both fleets fit under the generous cap.
        assert enforced.over_cap_ws_between(0.0, 120.0) == 0.0
        assert blind.over_cap_ws_between(0.0, 120.0) == 0.0
        # Post-shift the blind fleet violates; enforcement throttles.
        assert blind.over_cap_ws_between(120.0, 240.0) > 0.0
        assert enforced.over_cap_ws_between(120.0, 240.0) \
            < blind.over_cap_ws_between(120.0, 240.0)
        assert enforced.dvfs_transitions
        assert all(t >= 120.0 for t, _, _ in enforced.dvfs_transitions)
        assert blind.dvfs_transitions == ()
        assert blind.node_final_levels == (0, 0, 0)
        assert blind.shed == 0

    def test_impossible_cap_sheds_sheddable_tiers_only(self):
        """A cap below even the ladder-floor fleet draw sheds every
        sheddable arrival; non-sheddable tiers still route (and their
        overage lands in the ledger instead)."""
        requests = self._demand(rate=1 / 5)
        config = FleetPowerConfig(ladders=fleet_ladders(), cap_w=0.5,
                                  shed_tiers=("bronze", "silver"))
        plan = plan_dispatch(requests, self._specs(), "least_joules",
                             240.0, power=config)
        assert plan.shed
        assert {r.tier for r in plan.shed} <= {"bronze", "silver"}
        routed_tiers = {r.tier for node in plan.node_requests for r in node}
        assert "gold" in routed_tiers
        assert not any(r.tier in ("bronze", "silver")
                       for node in plan.node_requests for r in node)
        assert plan.power.shed == len(plan.shed)
        assert dict(plan.power.shed_by_tier) == {
            tier: sum(1 for r in plan.shed if r.tier == tier)
            for tier in {r.tier for r in plan.shed}}
        assert plan.power.fleet_over_cap_ws > 0.0

    def test_shed_arrivals_balance_the_plan(self):
        requests = self._demand(rate=1 / 4, horizon=300.0)
        config = FleetPowerConfig(ladders=fleet_ladders(), cap_w=16.0,
                                  cap_shift=(100.0, 8.0))
        plan = plan_dispatch(requests, self._specs(fail=150.0),
                             "least_joules", 240.0, power=config)
        assert sum(plan.routed) - plan.re_dispatched + len(plan.lost) \
            + len(plan.out_of_horizon) + len(plan.shed) == len(requests)
        shed_ids = {r.session_id for r in plan.shed}
        routed_ids = {r.session_id for node in plan.node_requests
                      for r in node}
        assert not shed_ids & routed_ids

    def test_dead_fleet_arrival_is_lost_not_shed(self):
        requests = [request(0, 10.0, 20.0, tier="bronze"),
                    request(1, 80.0, 20.0, tier="bronze")]
        specs = [NodeSpec(name="only", capacity=2, fail_at_s=50.0)]
        config = FleetPowerConfig(ladders=fleet_ladders(n=1), cap_w=0.5)
        plan = plan_dispatch(requests, specs, "least_joules", 200.0,
                             power=config)
        # Arrival 0 hits a live-but-over-budget fleet: shed.  Arrival 1
        # hits a dead fleet: lost, exactly as on the power-blind path.
        assert [r.session_id for r in plan.shed] == [0]
        assert 1 in {r.session_id for r in plan.lost}


class TestServeFleetPower:
    def test_power_ledger_rides_the_fleet_report(self):
        requests = demand()
        config = FleetPowerConfig(ladders=fleet_ladders(), cap_w=24.0)
        report = serve_fleet(requests, fleet_nodes(), "least_joules",
                             power=config)
        assert report.routing == "least_joules"
        assert report.power is not None
        assert report.power.fleet_energy_ws > 0.0
        assert report.arrivals == len(requests)
        for node in report.nodes:
            assert node.energy_ws is not None and node.energy_ws > 0.0
            assert node.over_cap_ws is not None
        assert "power" in report.summary()

    def test_degenerate_power_matches_power_blind_serving(self):
        requests = demand()
        config = FleetPowerConfig(
            ladders=fleet_ladders(multipliers=(1.0,)), cap_w=math.inf)
        governed = serve_fleet(requests, fleet_nodes(), "least_loaded",
                               power=config)
        plain = serve_fleet(requests, fleet_nodes(), "least_loaded")
        assert [n.report for n in governed.nodes] \
            == [n.report for n in plain.nodes]
        assert governed.shed == 0

    def test_power_with_feedback_rounds_deterministic(self):
        requests = demand(rate=1 / 5)
        config = FleetPowerConfig(ladders=fleet_ladders(), cap_w=20.0,
                                  cap_shift=(120.0, 10.0))
        a = serve_fleet(requests, fleet_nodes(), "pressure_feedback",
                        feedback_rounds=1, power=config)
        b = serve_fleet(requests, fleet_nodes(), "pressure_feedback",
                        feedback_rounds=1, power=config)
        assert a == b
        assert a.power is not None
