"""Tests for the multi-node fleet dispatcher (routing, dispatch, report)."""

import numpy as np
import pytest

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import jetson_class, orange_pi_5
from repro.search import MCTSConfig
from repro.serve import AdmissionConfig, ServeConfig, build_replan_policy
from repro.serve.fleet import (
    ROUTING_POLICIES,
    DispatchPlan,
    FleetNode,
    LeastLoadedRouter,
    NodeSpec,
    NodeView,
    RoundRobinRouter,
    TierAffinityRouter,
    build_routing_policy,
    jain_index,
    node_speed,
    plan_dispatch,
    serve_fleet,
)
from repro.workloads import (
    SessionRequest,
    TraceConfig,
    fleet_demand_config,
    sample_session_requests,
    split_session_requests,
)

POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")


def request(sid, arrival, duration, tier="gold", shift=None):
    return SessionRequest(session_id=sid, arrival_s=arrival,
                          duration_s=duration, tier=tier, tier_shift=shift)


def views(*specs):
    return [NodeView(index=i, name=f"n{i}", capacity=cap, speed=speed,
                     est_live=live)
            for i, (cap, speed, live) in enumerate(specs)]


# --------------------------------------------------------------- routing
class TestRouting:
    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        nodes = views((2, 1.0, 0), (2, 1.0, 0), (2, 1.0, 0))
        picks = [router.choose("gold", nodes) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_dead_nodes(self):
        router = RoundRobinRouter()
        alive = views((2, 1.0, 0), (2, 1.0, 0))      # node 2 already dead
        picks = [router.choose("gold", alive) for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_least_loaded_weighs_speed(self):
        router = LeastLoadedRouter()
        # One free slot on a fast node beats two on a slow one.
        nodes = views((3, 1.0, 1), (2, 4.0, 1))
        assert router.choose("bronze", nodes) == 1

    def test_least_loaded_prefers_lowest_index_on_tie(self):
        router = LeastLoadedRouter()
        nodes = views((2, 1.0, 1), (2, 1.0, 1))
        assert router.choose("gold", nodes) == 0

    def test_least_loaded_saturated_picks_least_overloaded(self):
        router = LeastLoadedRouter()
        nodes = views((2, 1.0, 4), (2, 1.0, 3))
        assert router.choose("gold", nodes) == 1

    def test_least_loaded_overload_favours_fast_drain(self):
        """Regression: under saturation the deficit is divided by speed,
        not multiplied — a fast node 2 over capacity clears its backlog
        sooner than a slow node 2 over."""
        router = LeastLoadedRouter()
        nodes = views((2, 4.0, 4), (2, 1.0, 4))
        assert router.choose("gold", nodes) == 0
        # A free slot anywhere still beats every saturated node.
        with_free = views((2, 4.0, 4), (2, 1.0, 1))
        assert router.choose("gold", with_free) == 1

    def test_tier_affinity_reserves_fastest_for_gold(self):
        router = TierAffinityRouter(reserve_fraction=1 / 3)
        nodes = views((2, 1.0, 0), (2, 5.0, 0), (2, 1.0, 0))
        assert router.choose("gold", nodes) == 1
        assert router.choose("bronze", nodes) in (0, 2)

    def test_tier_affinity_bronze_spills_only_when_saturated(self):
        router = TierAffinityRouter(reserve_fraction=1 / 3)
        full = views((1, 1.0, 1), (2, 5.0, 0), (1, 1.0, 1))
        assert router.choose("bronze", full) == 1   # unreserved saturated
        free = views((1, 1.0, 0), (2, 5.0, 0), (1, 1.0, 1))
        assert router.choose("bronze", free) == 0

    def test_tier_affinity_validates_config(self):
        with pytest.raises(ValueError):
            TierAffinityRouter(reserve_fraction=0.0)
        with pytest.raises(ValueError):
            TierAffinityRouter(gold_tiers=())

    def test_roster_builds_fresh_instances(self):
        assert set(ROUTING_POLICIES) == {"round_robin", "least_loaded",
                                         "tier_affinity",
                                         "tier_affinity_preempt",
                                         "pressure_feedback"}
        a = build_routing_policy("round_robin")
        b = build_routing_policy("round_robin")
        assert a is not b
        with pytest.raises(ValueError, match="unknown routing policy"):
            build_routing_policy("nope")


# -------------------------------------------------------------- dispatch
class TestPlanDispatch:
    def _specs(self, n=3, capacity=2, fail=None):
        return [NodeSpec(name=f"n{i}", capacity=capacity,
                         speed=1.0 + 0.5 * i,
                         fail_at_s=(fail if i == 0 else None))
                for i in range(n)]

    def test_round_robin_splits_evenly(self):
        requests = [request(i, 10.0 * i, 5.0) for i in range(6)]
        plan = plan_dispatch(requests, self._specs(), "round_robin", 100.0)
        assert plan.routed == (2, 2, 2)
        assert plan.re_dispatched == 0 and plan.lost == ()

    def test_every_request_routed_exactly_once(self):
        rng = np.random.default_rng(3)
        requests = sample_session_requests(
            rng, TraceConfig(horizon_s=400.0, arrival_rate_per_s=1 / 10,
                             mean_session_s=60.0))
        plan = plan_dispatch(requests, self._specs(), "least_loaded", 400.0)
        routed_ids = sorted(r.session_id for node in plan.node_requests
                            for r in node)
        assert routed_ids == sorted(r.session_id for r in requests)

    def test_deterministic_per_key(self):
        requests = [request(i, 3.0 * i, 40.0) for i in range(20)]
        plans = [plan_dispatch(requests, self._specs(), "tier_affinity",
                               200.0) for _ in range(2)]
        assert plans[0] == plans[1]

    def test_failure_drains_live_sessions(self):
        # Both sessions live on node 0 when it dies at t=50.
        requests = [request(0, 0.0, 100.0), request(1, 10.0, 100.0)]
        specs = [NodeSpec(name="dead", capacity=4, fail_at_s=50.0),
                 NodeSpec(name="alive", capacity=4)]
        plan = plan_dispatch(requests, specs, "round_robin", 200.0)
        assert plan.re_dispatched >= 1
        moved = [r for r in plan.node_requests[1] if r.arrival_s == 50.0]
        assert moved, "re-dispatched continuations arrive at the failure time"
        for r in moved:
            original = requests[r.session_id]
            assert r.duration_s == pytest.approx(
                original.arrival_s + original.duration_s - 50.0)

    def test_out_of_horizon_demand_is_recorded(self):
        """Regression: demand arriving after the horizon must be counted,
        not silently vanish from the plan."""
        requests = [request(0, 10.0, 5.0), request(1, 150.0, 5.0)]
        plan = plan_dispatch(requests, self._specs(), "round_robin", 100.0)
        assert sum(plan.routed) == 1
        assert [r.session_id for r in plan.out_of_horizon] == [1]

    def test_failure_with_no_survivors_loses_sessions(self):
        requests = [request(0, 0.0, 100.0), request(1, 60.0, 10.0)]
        specs = [NodeSpec(name="only", capacity=4, fail_at_s=50.0)]
        plan = plan_dispatch(requests, specs, "round_robin", 200.0)
        # Session 0 was live at the failure; session 1 arrived after it.
        assert plan.re_dispatched == 1
        assert len(plan.lost) == 2

    def test_fired_tier_shift_bakes_into_redispatch(self):
        req = request(0, 0.0, 100.0, tier="bronze", shift=(10.0, "gold"))
        specs = [NodeSpec(name="dead", capacity=4, fail_at_s=50.0),
                 NodeSpec(name="alive", capacity=4)]
        plan = plan_dispatch([req], specs, "round_robin", 200.0)
        moved = plan.node_requests[1][0]
        assert moved.tier == "gold" and moved.tier_shift is None

    def test_pending_tier_shift_keeps_remaining_offset(self):
        req = request(0, 0.0, 100.0, tier="bronze", shift=(80.0, "gold"))
        specs = [NodeSpec(name="dead", capacity=4, fail_at_s=50.0),
                 NodeSpec(name="alive", capacity=4)]
        plan = plan_dispatch([req], specs, "round_robin", 200.0)
        moved = plan.node_requests[1][0]
        assert moved.tier == "bronze"
        assert moved.tier_shift == (pytest.approx(30.0), "gold")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            NodeSpec(name="x", capacity=0)
        with pytest.raises(ValueError):
            NodeSpec(name="x", capacity=1, speed=0.0)
        with pytest.raises(ValueError):
            NodeSpec(name="x", capacity=1, fail_at_s=0.0)
        with pytest.raises(ValueError):
            plan_dispatch([], [], "round_robin", 100.0)
        with pytest.raises(ValueError):
            plan_dispatch([], self._specs(), "round_robin", 0.0)

    def test_node_speed_orders_platforms(self):
        slow = node_speed(orange_pi_5(), POOL)
        fast = node_speed(jetson_class(), POOL)
        assert 0 < slow < fast
        with pytest.raises(ValueError):
            node_speed(orange_pi_5(), ())


# ------------------------------------------------------------ the fleet
def fleet_nodes(n=3, capacity=2, fail=None, horizon=240.0):
    nodes = []
    for i in range(n):
        platform = orange_pi_5() if i % 2 == 0 else jetson_class()
        manager = RankMap(
            platform, OraclePredictor(platform),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=6, rollouts_per_leaf=2,
                                          seed=i)))
        nodes.append(FleetNode(
            spec=NodeSpec(name=f"n{i}", capacity=capacity,
                          speed=node_speed(platform, POOL),
                          fail_at_s=(fail if i == 0 else None)),
            platform=platform,
            policy=build_replan_policy("warm", manager),
            config=ServeConfig(horizon_s=horizon,
                               admission=AdmissionConfig(capacity=capacity),
                               pool=POOL, seed=i)))
    return nodes


def demand(horizon=240.0, seed=0, rate=1 / 8):
    return sample_session_requests(
        np.random.default_rng(seed),
        TraceConfig(horizon_s=horizon, arrival_rate_per_s=rate,
                    mean_session_s=90.0))


class TestServeFleet:
    def test_inline_fleet_end_to_end(self):
        # A 300 s demand against a 240 s fleet: the tail is out of horizon
        # but still accounted, matching the single-node ledger.
        requests = demand(horizon=300.0)
        report = serve_fleet(requests, fleet_nodes(), "least_loaded")
        assert report.routing == "least_loaded"
        assert len(report.nodes) == 3
        assert report.arrivals == len(requests)
        assert report.out_of_horizon == sum(
            1 for r in requests if r.arrival_s >= 240.0)
        assert report.admitted > 0
        assert report.delivered_inferences > 0
        assert 0.0 < report.node_fairness <= 1.0
        assert 0.0 < report.session_fairness <= 1.0
        assert "FleetReport[least_loaded]" in report.summary()

    def test_failed_node_report_truncates_at_failure(self):
        report = serve_fleet(demand(), fleet_nodes(fail=100.0),
                             "round_robin")
        failed = report.nodes[0]
        assert failed.failed_at_s == 100.0
        assert failed.report.horizon_s == 100.0
        assert all(n.report.horizon_s == 240.0 for n in report.nodes[1:])

    def test_tier_outcomes_cover_all_tiers(self):
        report = serve_fleet(demand(), fleet_nodes(), "tier_affinity")
        tiers = report.tier_outcomes()
        assert set(tiers) <= {"gold", "silver", "bronze"}
        assert sum(row["arrivals"] for row in tiers.values()) \
            == report.arrivals - report.lost - report.out_of_horizon
        for row in tiers.values():
            assert row["admitted"] <= row["arrivals"]

    def test_tier_outcomes_distinct_under_failure(self):
        """Regression: a re-dispatched session must count once per tier,
        not once per node report it appears in."""
        report = serve_fleet(demand(rate=1 / 5), fleet_nodes(fail=100.0),
                             "round_robin")
        assert report.re_dispatched > 0
        tiers = report.tier_outcomes()
        assert sum(row["arrivals"] for row in tiers.values()) \
            == report.arrivals - report.lost - report.out_of_horizon

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            serve_fleet([], [], "round_robin")


# --------------------------------------------------------------- report
class TestJainIndex:
    def test_even_is_one(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_holder_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_degenerate_inputs(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0


# ------------------------------------------------------ trace utilities
class TestTraceSplitting:
    def test_fleet_demand_scales_rate_and_cap(self):
        base = TraceConfig(horizon_s=600.0, arrival_rate_per_s=1 / 60,
                           mean_session_s=120.0, max_concurrent=3)
        scaled = fleet_demand_config(base, 4)
        assert scaled.arrival_rate_per_s == pytest.approx(4 / 60)
        assert scaled.max_concurrent == 12
        assert scaled.mean_session_s == base.mean_session_s
        with pytest.raises(ValueError):
            fleet_demand_config(base, 0)

    def test_split_round_robins_in_arrival_order(self):
        requests = [request(i, float(10 - i), 5.0) for i in range(6)]
        shards = split_session_requests(requests, 2)
        assert [r.session_id for r in shards[0]] == [5, 3, 1]
        assert [r.session_id for r in shards[1]] == [4, 2, 0]
        assert sum(len(s) for s in shards) == len(requests)
        with pytest.raises(ValueError):
            split_session_requests(requests, 0)

    def test_plan_is_plain_data(self):
        import pickle

        plan = plan_dispatch([request(0, 0.0, 5.0)],
                             [NodeSpec(name="n", capacity=1)],
                             "round_robin", 10.0)
        assert isinstance(plan, DispatchPlan)
        assert pickle.loads(pickle.dumps(plan)) == plan


# ------------------------------------------------- preemption-aware fleet
class TestPreemptAwareRouting:
    def _router(self):
        from repro.serve.fleet import PreemptAwareTierRouter

        return PreemptAwareTierRouter(reserve_fraction=1 / 3)

    def test_gold_prefers_reserved_free_slot(self):
        router = self._router()
        nodes = views((2, 1.0, 0), (2, 5.0, 0), (2, 1.0, 0))
        assert router.choose("gold", nodes) == 1

    def test_gold_avoids_eviction_by_spilling_to_unreserved(self):
        """A full reserved node would evict; a free unreserved slot is
        preferred even though tier affinity would keep gold reserved."""
        router = self._router()
        nodes = views((2, 1.0, 1), (2, 5.0, 2), (2, 1.0, 2))
        assert router.choose("gold", nodes) == 0

    def test_bronze_spills_to_reserved_free_slot(self):
        router = self._router()
        nodes = views((1, 1.0, 1), (2, 5.0, 0), (1, 1.0, 1))
        assert router.choose("bronze", nodes) == 1

    def test_saturated_fleet_falls_back_to_tier_affinity(self):
        """With no free slot anywhere the preemption is unavoidable, so
        the choice degrades to the plain tier-affinity pick."""
        from repro.serve.fleet import TierAffinityRouter

        router = self._router()
        plain = TierAffinityRouter(reserve_fraction=1 / 3)
        nodes = views((2, 1.0, 3), (2, 5.0, 2), (2, 1.0, 2))
        for tier in ("gold", "bronze"):
            assert router.choose(tier, nodes) == plain.choose(tier, nodes)


class TestFleetPreemption:
    def _preempt_fleet(self, routing="tier_affinity_preempt", fail_at=()):
        from repro.runner import DynamicScenario, FleetScenario

        nodes = tuple(DynamicScenario(
            name=f"node{i}", manager="baseline", policy="full",
            platform=("orange_pi_5" if i % 2 == 0 else "jetson_class"),
            seed=i, pool=POOL, capacity=2, queue_limit=6,
            preemption="evict_lowest_tier") for i in range(3))
        return FleetScenario(name=f"pf_{routing}", nodes=nodes,
                             routing=routing, seed=0, horizon_s=240.0,
                             arrival_rate_per_s=1 / 4, mean_session_s=90.0,
                             fail_at=fail_at)

    def test_parallel_equals_serial_with_preemption_and_failure(self):
        """Determinism regression: preemption-enabled fleets (including
        the node-failure re-dispatch path, whose continuations land on
        nodes that then evict for them) are bit-identical for 1 vs N
        workers."""
        from repro.runner import ScenarioRunner

        fleets = [self._preempt_fleet(),
                  self._preempt_fleet(fail_at=((1, 120.0),))]
        serial = ScenarioRunner(max_workers=1).run_fleet(fleets)
        parallel = ScenarioRunner(max_workers=3).run_fleet(fleets)
        assert [r.report for r in serial] == [r.report for r in parallel]
        report = serial[1].report
        assert report.re_dispatched > 0
        assert report.evictions > 0

    def test_fleet_report_rolls_up_preemption(self):
        from repro.runner import ScenarioRunner

        report = ScenarioRunner(max_workers=1).run_fleet(
            [self._preempt_fleet()])[0].report
        assert report.evictions == sum(n.report.evictions
                                       for n in report.nodes)
        assert report.resumptions <= report.evictions
        assert 0.0 < report.eviction_fairness <= 1.0
        if report.evictions:
            assert "preemption:" in report.summary()


# ------------------------------------------------- pressure feedback loop
class TestNodePressure:
    def _report(self, **kw):
        from types import SimpleNamespace

        defaults = dict(arrivals=10, out_of_horizon=2, abandoned=2,
                        rejected=1, queued_at_horizon=3)
        defaults.update(kw)
        return SimpleNamespace(**defaults)

    def test_rates_over_observed_arrivals(self):
        from repro.serve.fleet import pressure_from_report

        pressure = pressure_from_report(self._report())
        assert pressure.queue_depth == 3
        assert pressure.abandonment_rate == pytest.approx(2 / 8)
        assert pressure.rejection_rate == pytest.approx(1 / 8)
        assert pressure.denial_rate == pytest.approx(3 / 8)

    def test_nothing_observed_is_zero_pressure(self):
        from repro.serve.fleet import pressure_from_report

        pressure = pressure_from_report(self._report(
            arrivals=2, out_of_horizon=2, abandoned=0, rejected=0,
            queued_at_horizon=1))
        assert pressure.abandonment_rate == 0.0
        assert pressure.rejection_rate == 0.0
        assert pressure.queue_depth == 1   # residual queue still counts

    def test_denial_rate_clamped(self):
        from repro.serve.fleet import NodePressure

        assert NodePressure(abandonment_rate=0.8,
                            rejection_rate=0.7).denial_rate == 1.0
        assert NodePressure().denial_rate == 0.0

    def test_fleet_pressure_keys_by_name(self):
        from repro.serve.fleet import fleet_pressure

        specs = [NodeSpec(name="a", capacity=1),
                 NodeSpec(name="b", capacity=1)]
        pressure = fleet_pressure(specs, [self._report(),
                                          self._report(queued_at_horizon=0)])
        assert set(pressure) == {"a", "b"}
        assert pressure["a"].queue_depth == 3
        assert pressure["b"].queue_depth == 0

    def test_fleet_pressure_length_mismatch_rejected(self):
        from repro.serve.fleet import fleet_pressure

        with pytest.raises(ValueError, match="specs but"):
            fleet_pressure([NodeSpec(name="a", capacity=1)], [])


class TestPressureFeedbackRouting:
    def _router(self, pressure=None):
        from repro.serve.fleet import PressureFeedbackRouter

        router = PressureFeedbackRouter()
        if pressure:
            router.observe_pressure(pressure)
        return router

    def test_no_pressure_reproduces_least_loaded(self):
        """The feedback_rounds=0 anchor: with nothing observed the policy
        is LeastLoadedRouter choice for choice."""
        plain = LeastLoadedRouter()
        scenarios = [views((3, 1.0, 1), (2, 4.0, 1)),
                     views((2, 1.0, 1), (2, 1.0, 1)),
                     views((2, 4.0, 4), (2, 1.0, 4)),
                     views((2, 4.0, 4), (2, 1.0, 1))]
        for nodes in scenarios:
            assert self._router().choose("gold", nodes) \
                == plain.choose("gold", nodes)

    def test_residual_queue_counts_as_live_load(self):
        from repro.serve.fleet import NodePressure

        nodes = views((2, 1.0, 0), (2, 1.0, 0))
        assert self._router().choose("gold", nodes) == 0   # index tie-break
        router = self._router({"n0": NodePressure(queue_depth=2)})
        assert router.choose("gold", nodes) == 1

    def test_denial_rate_discounts_speed(self):
        from repro.serve.fleet import NodePressure

        nodes = views((2, 4.0, 1), (2, 3.0, 1))
        assert self._router().choose("gold", nodes) == 0   # faster headroom
        router = self._router({"n0": NodePressure(rejection_rate=0.8)})
        assert router.choose("gold", nodes) == 1           # 4*0.2 < 3

    def test_full_denial_stays_orderable(self):
        """The 95% discount cap: a node that turned everything away keeps
        a positive adjusted speed, so saturation drain-times stay finite."""
        from repro.serve.fleet import NodePressure

        nodes = views((2, 1.0, 4), (2, 1.0, 4))
        router = self._router({"n0": NodePressure(abandonment_rate=1.0),
                               "n1": NodePressure(abandonment_rate=1.0)})
        assert router.choose("gold", nodes) in (0, 1)      # no crash

    def test_pressure_blind_policies_ignore_the_hook(self):
        from repro.serve.fleet import NodePressure

        nodes = views((2, 1.0, 0), (2, 1.0, 0))
        plain = LeastLoadedRouter()
        plain.observe_pressure({"n0": NodePressure(queue_depth=9)})
        assert plain.choose("gold", nodes) == 0


class TestServeFleetFeedback:
    def test_feedback_rounds_deterministic(self):
        requests = demand(rate=1 / 5)
        a = serve_fleet(requests, fleet_nodes(), "pressure_feedback",
                        feedback_rounds=2)
        b = serve_fleet(requests, fleet_nodes(), "pressure_feedback",
                        feedback_rounds=2)
        assert a == b
        assert a.routing == "pressure_feedback"

    def test_round_zero_matches_least_loaded_node_reports(self):
        """feedback_rounds=0 with the pressure router is bit-for-bit
        today's least_loaded dispatch (only the routing label differs)."""
        requests = demand()
        fed = serve_fleet(requests, fleet_nodes(), "pressure_feedback",
                          feedback_rounds=0)
        plain = serve_fleet(requests, fleet_nodes(), "least_loaded")
        assert [n.report for n in fed.nodes] \
            == [n.report for n in plain.nodes]

    def test_feedback_survives_node_failure(self):
        report = serve_fleet(demand(rate=1 / 5), fleet_nodes(fail=100.0),
                             "pressure_feedback", feedback_rounds=1)
        assert report.re_dispatched > 0
        assert report.nodes[0].failed_at_s == 100.0

    def test_policy_objects_cannot_iterate(self):
        """Each round needs a *fresh* policy; an instance cannot be
        rebuilt, so feedback_rounds>0 demands a roster key."""
        from repro.serve.fleet import PressureFeedbackRouter

        with pytest.raises(ValueError, match="roster key"):
            serve_fleet(demand(), fleet_nodes(), PressureFeedbackRouter(),
                        feedback_rounds=1)

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError, match="feedback_rounds"):
            serve_fleet(demand(), fleet_nodes(), "pressure_feedback",
                        feedback_rounds=-1)
