"""Unit tests for the metrics package."""

import numpy as np
import pytest

from repro.hw import orange_pi_5
from repro.mapping import gpu_only_mapping
from repro.metrics import (
    STARVATION_EPSILON,
    any_starved,
    average_throughput,
    baseline_result,
    count_starved,
    normalized_throughput,
    pearson_r,
    potential_throughput,
    starved_mask,
)
from repro.sim import simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()


def result_for(names):
    workload = [get_model(n) for n in names]
    return simulate(workload, gpu_only_mapping(workload), PLATFORM)


class TestThroughputMetrics:
    def test_baseline_result_is_gpu_only(self):
        workload = [get_model("alexnet")]
        base = baseline_result(workload, PLATFORM)
        assert base.rates[0] == pytest.approx(base.ideal_rates[0])

    def test_normalized_throughput_identity(self):
        base = result_for(["alexnet", "resnet50"])
        assert normalized_throughput(base, base) == pytest.approx(1.0)

    def test_normalized_throughput_rejects_zero_baseline(self):
        base = result_for(["alexnet"])
        broken = result_for(["alexnet"])
        object.__setattr__(broken, "rates", np.zeros(1))
        with pytest.raises(ValueError):
            normalized_throughput(base, broken)

    def test_average_and_potential_passthrough(self):
        r = result_for(["alexnet", "resnet50"])
        assert average_throughput(r) == r.average_throughput
        np.testing.assert_array_equal(potential_throughput(r), r.potentials)


class TestStarvation:
    def test_solo_dnn_never_starved(self):
        r = result_for(["resnet50"])
        assert not any_starved(r)
        assert count_starved(r) == 0

    def test_mask_thresholding(self):
        r = result_for(["resnet50"])
        # Force a potential below epsilon.
        object.__setattr__(r, "rates",
                           r.ideal_rates * (STARVATION_EPSILON / 2))
        assert starved_mask(r).all()
        assert count_starved(r) == 1
        assert any_starved(r)

    def test_custom_epsilon(self):
        r = result_for(["resnet50"])
        assert any_starved(r, epsilon=2.0)  # everything below 200 % of ideal

    def test_epsilon_documented_value(self):
        assert STARVATION_EPSILON == 0.02


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson_r([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson_r([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_vector_gives_zero(self):
        assert pearson_r([1, 1, 1], [1, 2, 3]) == 0.0

    def test_symmetry(self):
        x, y = [1.0, 4.0, 2.0, 8.0], [0.5, 2.5, 1.0, 3.0]
        assert pearson_r(x, y) == pytest.approx(pearson_r(y, x))

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            x, y = rng.normal(size=8), rng.normal(size=8)
            assert -1.0 <= pearson_r(x, y) <= 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pearson_r([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            pearson_r([1], [1])
