"""Unit tests for the mapping representation and generators."""

import numpy as np
import pytest

from repro.mapping import (
    Mapping,
    extract_stages,
    gpu_only_mapping,
    log10_solution_space,
    random_partition_mapping,
    solution_space_size,
    uniform_block_mapping,
)
from repro.zoo import get_model


def workload():
    return [get_model("alexnet"), get_model("squeezenet_v2")]


class TestMapping:
    def test_from_lists(self):
        m = Mapping.from_lists([[0, 0, 1], [2]])
        assert m.assignments == ((0, 0, 1), (2,))
        assert m.num_dnns == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Mapping(())
        with pytest.raises(ValueError):
            Mapping(((),))

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            Mapping(((0, -1),))

    def test_components_used(self):
        m = Mapping(((0, 0, 2), (1,)))
        assert m.components_used() == {0, 1, 2}

    def test_validate_against_workload(self):
        wl = workload()
        good = gpu_only_mapping(wl)
        good.validate_against(wl, 3)

    def test_validate_wrong_dnn_count(self):
        wl = workload()
        with pytest.raises(ValueError, match="covers"):
            Mapping(((0,),)).validate_against(wl, 3)

    def test_validate_wrong_block_count(self):
        wl = workload()
        bad = Mapping(((0,) * 5, (0,) * wl[1].num_blocks))
        with pytest.raises(ValueError, match="assignments for"):
            bad.validate_against(wl, 3)

    def test_validate_component_out_of_range(self):
        wl = workload()
        bad = Mapping((
            tuple([5] * wl[0].num_blocks),
            tuple([0] * wl[1].num_blocks),
        ))
        with pytest.raises(ValueError, match="out of range"):
            bad.validate_against(wl, 3)

    def test_repr_compact(self):
        assert "001" in repr(Mapping(((0, 0, 1),)))


class TestStages:
    def test_single_run(self):
        stages = extract_stages(0, (1, 1, 1))
        assert len(stages) == 1
        assert stages[0].component == 1
        assert (stages[0].block_start, stages[0].block_end) == (0, 3)
        assert stages[0].num_blocks == 3

    def test_alternating_runs(self):
        stages = extract_stages(0, (0, 1, 0))
        assert [(s.component, s.block_start, s.block_end) for s in stages] == [
            (0, 0, 1), (1, 1, 2), (0, 2, 3),
        ]

    def test_runs_merge(self):
        stages = extract_stages(2, (2, 2, 1, 1, 1))
        assert len(stages) == 2
        assert stages[0].dnn_index == 2

    def test_mapping_stages_cover_all_blocks(self):
        m = Mapping(((0, 1, 1), (2, 2)))
        total = sum(s.num_blocks for s in m.stages())
        assert total == 5
        assert m.num_stages() == 3

    def test_gpu_only_single_stage_per_dnn(self):
        wl = workload()
        m = gpu_only_mapping(wl)
        stages = m.stages()
        assert len(stages) == 2
        assert all(s.component == 0 for s in stages)


class TestRandomGenerators:
    def test_partition_mapping_valid(self):
        wl = workload()
        rng = np.random.default_rng(3)
        for _ in range(50):
            m = random_partition_mapping(wl, 3, rng)
            m.validate_against(wl, 3)

    def test_partition_mapping_respects_max_stages(self):
        wl = workload()
        rng = np.random.default_rng(3)
        for _ in range(50):
            m = random_partition_mapping(wl, 3, rng, max_stages=2)
            for i in range(len(wl)):
                runs = extract_stages(i, m.assignments[i])
                assert len(runs) <= 2

    def test_partition_mapping_diverse(self):
        wl = workload()
        rng = np.random.default_rng(3)
        seen = {random_partition_mapping(wl, 3, rng).assignments
                for _ in range(30)}
        assert len(seen) > 20

    def test_uniform_mapping_valid_and_diverse(self):
        wl = workload()
        rng = np.random.default_rng(3)
        maps = [uniform_block_mapping(wl, 3, rng) for _ in range(20)]
        for m in maps:
            m.validate_against(wl, 3)
        assert len({m.assignments for m in maps}) == 20

    def test_zero_components_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_partition_mapping(workload(), 0, rng)
        with pytest.raises(ValueError):
            uniform_block_mapping(workload(), 0, rng)

    def test_deterministic_under_seed(self):
        wl = workload()
        a = random_partition_mapping(wl, 3, np.random.default_rng(9))
        b = random_partition_mapping(wl, 3, np.random.default_rng(9))
        assert a.assignments == b.assignments


class TestSolutionSpace:
    def test_paper_example_exponent(self):
        wl = [get_model(n)
              for n in ("alexnet", "mobilenet", "resnet50", "shufflenet")]
        assert solution_space_size(wl, 3) == 3 ** (8 + 20 + 18 + 18)

    def test_log10(self):
        wl = workload()
        expected = (wl[0].num_blocks + wl[1].num_blocks) * np.log10(3)
        assert log10_solution_space(wl, 3) == pytest.approx(expected)
