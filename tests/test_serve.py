"""Tests for the online serving subsystem (admission, replan, loop)."""

import numpy as np
import pytest

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.search import MCTSConfig
from repro.serve import (
    ADMIT,
    PREEMPT,
    QUEUE,
    REJECT,
    AdmissionConfig,
    AdmissionController,
    FullReplan,
    LiveView,
    PlanCacheReplan,
    ServeConfig,
    WarmStartReplan,
    build_preemption_policy,
    build_replan_policy,
    serve_trace,
)
from repro.sim import EvaluationCache, simulate
from repro.workloads import SessionRequest, TraceConfig, sample_session_requests
from repro.zoo import get_model

PLATFORM = orange_pi_5()
POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")

SMALL_MCTS = MCTSConfig(iterations=8, rollouts_per_leaf=2)


def rankmap(cache=None, mode="dynamic"):
    return RankMap(PLATFORM, OraclePredictor(PLATFORM, cache=cache),
                   RankMapConfig(mode=mode, mcts=SMALL_MCTS))


def request(sid, arrival, duration, tier="gold", shift=None):
    return SessionRequest(session_id=sid, arrival_s=arrival,
                          duration_s=duration, tier=tier, tier_shift=shift)


def serve_config(capacity=2, queue_limit=2, max_wait=100.0, horizon=400.0,
                 seed=0, preemption="none"):
    return ServeConfig(
        horizon_s=horizon,
        admission=AdmissionConfig(capacity=capacity, queue_limit=queue_limit,
                                  max_queue_wait_s=max_wait,
                                  preemption=preemption),
        pool=POOL, seed=seed)


def live_view(name, sid, tier, priority, admitted=0.0, served=0.0):
    return LiveView(name=name, session_id=sid, tier=tier,
                    priority=priority, admitted_s=admitted,
                    served_s=served)


# ------------------------------------------------------------- admission
class TestAdmissionController:
    def test_admits_below_capacity(self):
        c = AdmissionController(AdmissionConfig(capacity=2))
        assert c.decide("bronze", 1, 0, can_place=True) == ADMIT

    def test_queues_high_tier_at_capacity(self):
        c = AdmissionController(AdmissionConfig(capacity=2, queue_limit=4))
        assert c.decide("gold", 2, 0, can_place=True) == QUEUE
        assert c.decide("silver", 2, 0, can_place=True) == QUEUE

    def test_rejects_low_tier_at_capacity(self):
        c = AdmissionController(AdmissionConfig(capacity=2))
        assert c.decide("bronze", 2, 0, can_place=True) == REJECT

    def test_rejects_when_queue_full(self):
        c = AdmissionController(AdmissionConfig(capacity=1, queue_limit=1))
        assert c.decide("gold", 1, 1, can_place=True) == REJECT

    def test_pool_exhaustion_blocks_placement(self):
        c = AdmissionController(AdmissionConfig(capacity=8, queue_limit=2))
        assert c.decide("gold", 3, 0, can_place=False) == QUEUE

    def test_unknown_tier_rejected(self):
        c = AdmissionController()
        with pytest.raises(ValueError, match="unknown SLA tier"):
            c.decide("platinum", 0, 0, can_place=True)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(capacity=0)
        with pytest.raises(ValueError):
            AdmissionConfig(queue_limit=-1)
        with pytest.raises(ValueError):
            AdmissionConfig(max_queue_wait_s=0.0)

    def test_queue_drain_order_tier_then_fifo(self):
        c = AdmissionController()
        keys = [c.queue_order_key("bronze", 1.0, 1),
                c.queue_order_key("gold", 5.0, 2),
                c.queue_order_key("gold", 2.0, 3)]
        assert sorted(keys) == [keys[2], keys[1], keys[0]]


# ---------------------------------------------------------------- replan
class TestReplanPolicies:
    def _incumbent(self, policy, workload):
        first = policy.replan(workload, None, None)
        return (tuple(m.name for m in workload), first.mapping)

    def test_full_replan_matches_manager(self):
        manager = rankmap()
        policy = FullReplan(manager)
        workload = [get_model("alexnet"), get_model("mobilenet_v2")]
        outcome = policy.replan(workload, None, None)
        direct = rankmap().plan(workload)
        assert outcome.kind == "full"
        assert outcome.mapping == direct.mapping
        assert outcome.decision_seconds == direct.decision_seconds

    def test_warm_start_is_cheaper_than_full(self):
        manager = rankmap()
        policy = WarmStartReplan(manager)
        resident = [get_model("alexnet"), get_model("squeezenet")]
        incumbent = self._incumbent(policy, resident)
        workload = resident + [get_model("mobilenet_v2")]
        warm = policy.replan(workload, None, incumbent)
        full = FullReplan(rankmap()).replan(workload, None, None)
        assert warm.kind in ("warm", "warm_fallback")
        assert warm.decision_seconds < full.decision_seconds

    def test_warm_start_keeps_resident_assignments(self):
        manager = rankmap()
        policy = WarmStartReplan(manager)
        resident = [get_model("alexnet"), get_model("squeezenet")]
        incumbent_names, incumbent_mapping = self._incumbent(policy, resident)
        workload = resident + [get_model("mobilenet_v2")]
        outcome = policy.replan(workload, None,
                                (incumbent_names, incumbent_mapping))
        if outcome.kind == "warm":
            assert outcome.mapping.assignments[:2] \
                == incumbent_mapping.assignments
        new_blocks = outcome.mapping.assignments[2]
        assert len(new_blocks) == get_model("mobilenet_v2").num_blocks

    def test_warm_start_requires_rankmap(self):
        from repro.baselines import GpuBaseline

        with pytest.raises(ValueError, match="RankMap"):
            WarmStartReplan(GpuBaseline())

    def test_plan_cache_hit_is_free_and_identical(self):
        """Acceptance: cache hits cost nothing and replay the same mapping
        (hence identical steady-state rates) for identical workloads."""
        policy = PlanCacheReplan(FullReplan(rankmap()))
        workload = [get_model("alexnet"), get_model("mobilenet_v2")]
        miss = policy.replan(workload, None, None)
        hit = policy.replan(workload, None, None)
        assert (policy.hits, policy.misses) == (1, 1)
        assert hit.kind == "cache_hit"
        assert hit.decision_seconds == 0.0
        assert hit.mapping == miss.mapping
        miss_rates = simulate(workload, miss.mapping, PLATFORM).rates
        hit_rates = simulate(workload, hit.mapping, PLATFORM).rates
        np.testing.assert_array_equal(hit_rates, miss_rates)

    def test_plan_cache_keyed_on_priorities(self):
        policy = PlanCacheReplan(FullReplan(rankmap(mode="static")))
        workload = [get_model("alexnet"), get_model("mobilenet_v2")]
        policy.replan(workload, np.array([0.7, 0.3]), None)
        out = policy.replan(workload, np.array([0.3, 0.7]), None)
        assert out.kind != "cache_hit"
        assert policy.misses == 2

    def test_unknown_policy_key_rejected(self):
        with pytest.raises(ValueError, match="unknown replan policy"):
            build_replan_policy("nope", rankmap())

    def test_roster_builds_all_policies(self):
        from repro.serve import REPLAN_POLICIES

        for key in REPLAN_POLICIES:
            policy = build_replan_policy(key, rankmap())
            out = policy.replan([get_model("alexnet")], None, None)
            assert out.mapping.num_dnns == 1


# ------------------------------------------------------------------ loop
class TestServeLoop:
    def test_sessions_partition_into_outcomes(self):
        requests = sample_session_requests(
            np.random.default_rng(3),
            TraceConfig(horizon_s=400.0, arrival_rate_per_s=1 / 25,
                        mean_session_s=150.0, pool=POOL))
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config())
        assert report.arrivals == len(requests)
        by_state = {s.outcome for s in report.sessions}
        assert by_state <= {"served", "serving", "rejected", "abandoned",
                            "queued", "out_of_horizon"}
        terminal = (report.admitted + report.rejected + report.abandoned
                    + report.queued_at_horizon + report.out_of_horizon)
        assert terminal == report.arrivals

    def test_queue_admits_what_blind_drop_loses(self):
        # Two gold sessions contend for one slot: the second queues and is
        # admitted when the first departs, instead of being dropped.
        requests = [request(0, 10.0, 100.0), request(1, 20.0, 100.0)]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(capacity=1, horizon=400.0))
        second = report.sessions[1]
        assert second.outcome == "served"
        # Enqueued once the first session's planning gap closes; admitted
        # at the first departure (t=110).
        assert 0 < second.queue_wait_s <= 90.0
        assert second.admitted_s == pytest.approx(110.0)
        assert report.waited_in_queue == 1

    def test_bronze_rejected_at_capacity(self):
        requests = [request(0, 10.0, 200.0, tier="gold"),
                    request(1, 20.0, 50.0, tier="bronze")]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(capacity=1, horizon=300.0))
        assert report.sessions[1].outcome == "rejected"

    def test_queue_timeout_abandons(self):
        requests = [request(0, 10.0, 500.0), request(1, 20.0, 50.0)]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(capacity=1, max_wait=60.0,
                                          horizon=400.0))
        assert report.sessions[1].outcome == "abandoned"
        assert report.sessions[1].queue_wait_s == pytest.approx(60.0)

    def test_gap_time_charged_to_new_arrival(self):
        # The second session arrives while the first runs; the replan's
        # modeled latency shows up as its (and only its) gap time.
        requests = [request(0, 0.0, 390.0), request(1, 100.0, 250.0)]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(capacity=2, horizon=400.0))
        first, second = report.sessions
        assert second.gap_seconds > 0
        assert second.gap_seconds < second.served_seconds
        # The resident only stalls for its own initial planning window.
        assert first.gap_seconds < first.served_seconds / 2

    def test_tier_shift_triggers_replan(self):
        requests = [request(0, 0.0, 300.0, tier="bronze",
                            shift=(100.0, "gold"))]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(capacity=2, horizon=350.0))
        # initial plan + shift replan
        assert report.replans == 2
        assert report.sessions[0].tier == "gold"

    def test_deterministic_given_seed(self):
        requests = sample_session_requests(
            np.random.default_rng(11),
            TraceConfig(horizon_s=300.0, arrival_rate_per_s=1 / 30,
                        mean_session_s=120.0, pool=POOL))
        a = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                        serve_config())
        b = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                        serve_config())
        assert a == b

    def test_warm_cache_insensitive_to_cache_state(self):
        """A warm evaluation cache changes the wall clock, not the report."""
        requests = sample_session_requests(
            np.random.default_rng(5),
            TraceConfig(horizon_s=300.0, arrival_rate_per_s=1 / 30,
                        mean_session_s=120.0, pool=POOL))
        cold_cache = EvaluationCache(PLATFORM)
        cold = serve_trace(requests, FullReplan(rankmap(cache=cold_cache)),
                           PLATFORM, serve_config(), cache=cold_cache)
        warm = serve_trace(requests, FullReplan(rankmap(cache=cold_cache)),
                           PLATFORM, serve_config(), cache=cold_cache)
        assert cold == warm
        assert cold_cache.hit_rate > 0

    def test_empty_trace_yields_empty_report(self):
        report = serve_trace([], FullReplan(rankmap()), PLATFORM,
                             serve_config())
        assert report.arrivals == 0
        assert report.replans == 0
        assert len(report.timeline.segments) == 1  # one idle segment

    def test_invalid_tier_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown SLA tier"):
            serve_trace([request(0, 1.0, 10.0, tier="platinum")],
                        FullReplan(rankmap()), PLATFORM, serve_config())

    def test_invalid_shift_tier_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown SLA tier"):
            serve_trace([request(0, 1.0, 10.0, shift=(5.0, "platinum"))],
                        FullReplan(rankmap()), PLATFORM, serve_config())

    def test_out_of_horizon_arrivals_accounted(self):
        """Serving a trace with a shorter horizon than it was sampled for
        must not silently drop the unobserved demand."""
        requests = [request(0, 10.0, 50.0), request(1, 150.0, 50.0)]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(horizon=100.0))
        assert report.arrivals == 2
        assert report.out_of_horizon == 1
        assert report.sessions[1].outcome == "out_of_horizon"

    def test_timeline_contiguous_to_horizon(self):
        requests = [request(0, 10.0, 100.0), request(1, 50.0, 60.0)]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(horizon=200.0))
        segs = report.timeline.segments
        for prev, nxt in zip(segs, segs[1:]):
            assert prev.t_end == pytest.approx(nxt.t_start)
        assert segs[-1].t_end == pytest.approx(200.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(horizon_s=0.0)
        with pytest.raises(ValueError):
            ServeConfig(pool=())

    def test_report_summary_renders(self):
        report = serve_trace([request(0, 1.0, 50.0)],
                             FullReplan(rankmap()), PLATFORM,
                             serve_config(horizon=100.0))
        text = report.summary()
        assert "ServeReport" in text and "replans" in text


# -------------------------------------------------------------- preempt
class TestPreemptionController:
    """Verdict-level behaviour of decide()/plan_preemption()."""

    def _controller(self, preemption, capacity=2, queue_limit=4):
        return AdmissionController(AdmissionConfig(
            capacity=capacity, queue_limit=queue_limit,
            preemption=preemption))

    def test_unknown_preemption_key_rejected(self):
        with pytest.raises(ValueError, match="unknown preemption policy"):
            AdmissionConfig(preemption="nope")
        with pytest.raises(ValueError, match="unknown preemption policy"):
            build_preemption_policy("nope")

    def test_no_preempt_without_live_views(self):
        c = self._controller("evict_lowest_tier")
        assert c.decide("gold", 2, 0, can_place=True) == QUEUE

    def test_gold_preempts_bronze(self):
        c = self._controller("evict_lowest_tier")
        live = (live_view("a", 0, "gold", 0.7), live_view("b", 1, "bronze", 0.1))
        assert c.decide("gold", 2, 0, True, live) == PREEMPT
        plan = c.plan_preemption("gold", 2, True, live)
        assert plan.action == "evict" and plan.victim == "b"

    def test_no_self_preemption_among_equals(self):
        """Gold-vs-gold contention: equal tiers never preempt each other."""
        c = self._controller("evict_lowest_tier")
        live = (live_view("a", 0, "gold", 0.7), live_view("b", 1, "gold", 0.7))
        assert c.decide("gold", 2, 0, True, live) == QUEUE
        assert c.plan_preemption("gold", 2, True, live) is None

    def test_bronze_cannot_preempt_upward(self):
        c = self._controller("evict_lowest_tier", queue_limit=0)
        live = (live_view("a", 0, "gold", 0.7), live_view("b", 1, "silver", 0.2))
        assert c.decide("bronze", 2, 0, True, live) == REJECT

    def test_victim_is_lowest_tier_then_least_served(self):
        c = self._controller("evict_lowest_tier", capacity=3)
        live = (live_view("a", 0, "bronze", 0.1, served=5.0),
                live_view("b", 1, "silver", 0.2, served=1.0),
                live_view("c", 2, "bronze", 0.1, served=2.0))
        plan = c.plan_preemption("gold", 3, True, live)
        assert plan.victim == "c"     # lowest tier, least invested

    def test_victim_tie_break_survives_resumption(self):
        """Regression: a resumed session's admission time resets, but
        its accumulated service must still protect it — otherwise the
        policy re-evicts the same session forever."""
        c = self._controller("evict_lowest_tier", capacity=3)
        # A: evicted once, resumed late (latest admit) but most served.
        live = (live_view("a", 0, "bronze", 0.1, admitted=100.0,
                          served=50.0),
                live_view("b", 1, "bronze", 0.1, admitted=60.0,
                          served=40.0))
        plan = c.plan_preemption("gold", 3, True, live)
        assert plan.victim == "b"     # least served, not latest admitted

    def test_renegotiate_demotes_to_floor(self):
        c = self._controller("renegotiate")
        live = (live_view("a", 0, "silver", 0.2), live_view("b", 1, "gold", 0.7))
        assert c.decide("gold", 2, 0, True, live) == PREEMPT
        plan = c.plan_preemption("gold", 2, True, live)
        assert plan.action == "demote"
        assert plan.victim == "a" and plan.demote_to == "bronze"

    def test_renegotiate_skips_floor_tier_victims(self):
        """A victim already at the ladder floor cannot be demoted."""
        c = self._controller("renegotiate")
        live = (live_view("a", 0, "bronze", 0.1), live_view("b", 1, "bronze", 0.1))
        assert c.decide("gold", 2, 0, True, live) == QUEUE

    def test_renegotiate_needs_free_name_and_headroom(self):
        c = self._controller("renegotiate", capacity=2)
        live = (live_view("a", 0, "silver", 0.2), live_view("b", 1, "gold", 0.7))
        # Pool exhausted: a demotion frees no name, so no admission.
        assert c.plan_preemption("gold", 2, False, live) is None
        # Already one past capacity: the default overcommit of 1 is spent.
        over = live + (live_view("c", 2, "silver", 0.2),)
        assert c.plan_preemption("gold", 3, True, over) is None

    def test_eviction_respects_capacity_after_freeing(self):
        """Eviction frees exactly one slot, so an overcommitted node
        (left behind by renegotiation) cannot evict below its cap."""
        c = self._controller("evict_lowest_tier", capacity=1)
        live = (live_view("a", 0, "bronze", 0.1), live_view("b", 1, "bronze", 0.1))
        assert c.plan_preemption("gold", 2, True, live) is None


class TestPreemptionLoop:
    """End-to-end eviction / renegotiation semantics in serve_trace."""

    @staticmethod
    def _fast_policy():
        """A near-zero-latency replan policy: timing-precise assertions
        must not be smeared by modeled search gaps."""
        from repro.baselines import GpuBaseline

        return FullReplan(GpuBaseline())

    def test_evicts_only_running_session_and_resumes(self):
        """Edge case: the victim is the only resident — it suspends, the
        gold arrival serves, and the victim resumes to completion."""
        requests = [request(0, 0.0, 100.0, tier="bronze"),
                    request(1, 10.0, 20.0, tier="gold")]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1,
                                          preemption="evict_lowest_tier"))
        bronze, gold = report.sessions
        assert gold.outcome == "served"
        assert gold.admitted_s == pytest.approx(10.0)
        assert gold.queue_wait_s == 0.0
        assert bronze.outcome == "served"
        assert bronze.evictions == 1 and bronze.resumptions == 1
        assert bronze.served_seconds == pytest.approx(100.0)
        # Suspended from t=10 to t=30: the full duration still serves.
        assert bronze.departed_s == pytest.approx(120.0)
        assert report.evictions == 1 and report.resumptions == 1

    def test_evicted_session_never_resumed_is_terminal(self):
        requests = [request(0, 0.0, 390.0, tier="bronze"),
                    request(1, 10.0, 380.0, tier="gold")]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(capacity=1, max_wait=50.0,
                                          preemption="evict_lowest_tier"))
        bronze = report.sessions[0]
        assert bronze.outcome == "evicted"
        assert bronze.evictions == 1 and bronze.resumptions == 0
        assert report.evicted == 1
        assert report.eviction_fairness < 1.0

    def test_stale_departure_after_resume_is_ignored(self):
        """Regression: the victim's original departure event (still in
        the heap) must not end its resumed service interval early."""
        requests = [request(0, 0.0, 100.0, tier="bronze"),
                    request(1, 50.0, 10.0, tier="gold")]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1,
                                          preemption="evict_lowest_tier"))
        bronze = report.sessions[0]
        # Evicted at 50, resumed at 60; the stale t=100 departure is
        # skipped and the true one fires at 110.
        assert bronze.departed_s == pytest.approx(110.0)
        assert bronze.served_seconds == pytest.approx(100.0)

    def test_eviction_racing_coincident_departure(self):
        """A departure at the same instant frees the slot first (the
        departure event rank precedes arrivals), so no eviction fires."""
        requests = [request(0, 0.0, 50.0, tier="bronze"),
                    request(1, 50.0, 30.0, tier="gold")]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1,
                                          preemption="evict_lowest_tier"))
        bronze, gold = report.sessions
        assert report.evictions == 0
        assert bronze.outcome == "served"
        assert gold.admitted_s == pytest.approx(50.0)

    def test_renegotiation_demotes_and_overcommits(self):
        requests = [request(0, 0.0, 200.0, tier="silver"),
                    request(1, 10.0, 50.0, tier="gold")]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1,
                                          preemption="renegotiate"))
        victim, gold = report.sessions
        assert report.demotions == 1 and report.evictions == 0
        assert victim.tier == "bronze"        # demoted to the floor
        assert victim.demotions == 1
        assert victim.outcome == "served"     # kept running, overcommitted
        assert gold.admitted_s == pytest.approx(10.0)

    def test_renegotiation_queues_when_victim_already_bronze(self):
        """Edge case: an all-bronze node renegotiates nothing — the gold
        arrival falls back to the queue."""
        requests = [request(0, 0.0, 200.0, tier="bronze"),
                    request(1, 10.0, 50.0, tier="gold")]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(capacity=1,
                                          preemption="renegotiate"))
        bronze, gold = report.sessions
        assert report.demotions == 0
        assert bronze.tier == "bronze" and bronze.demotions == 0
        assert gold.queue_wait_s > 0

    def test_parked_victims_do_not_consume_queue_slots(self):
        """Suspended sessions wait outside the bounded waiting room: a
        fresh gold arrival still finds a queue slot after an eviction
        filled the node, even with queue_limit=1."""
        requests = [request(0, 0.0, 300.0, tier="bronze"),
                    request(1, 10.0, 300.0, tier="gold"),
                    request(2, 20.0, 50.0, tier="gold")]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(capacity=1, queue_limit=1,
                                          preemption="evict_lowest_tier"))
        third = report.sessions[2]
        assert report.evictions == 1
        assert third.outcome != "rejected"

    def test_pending_tier_shift_survives_suspension(self):
        """A not-yet-fired shift keeps its remaining offset across an
        evict/resume cycle (service-relative, like the duration)."""
        requests = [request(0, 0.0, 200.0, tier="bronze",
                            shift=(60.0, "gold")),
                    request(1, 10.0, 20.0, tier="gold")]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1,
                                          preemption="evict_lowest_tier"))
        bronze = report.sessions[0]
        # Evicted at 10 after 10 s of service, resumed at 30; the shift
        # fires 50 s of service later, and the session ends gold.
        assert bronze.evictions == 1 and bronze.resumptions == 1
        assert bronze.tier == "gold"

    def test_preemption_none_matches_legacy_reports(self):
        """The default policy is bit-identical to the pre-preemption
        loop on a stochastic trace."""
        requests = sample_session_requests(
            np.random.default_rng(11),
            TraceConfig(horizon_s=300.0, arrival_rate_per_s=1 / 30,
                        mean_session_s=120.0, pool=POOL))
        a = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                        serve_config())
        b = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                        serve_config(preemption="none"))
        assert a == b
        assert a.evictions == 0 and a.demotions == 0

    def test_preemption_deterministic_given_seed(self):
        requests = sample_session_requests(
            np.random.default_rng(13),
            TraceConfig(horizon_s=300.0, arrival_rate_per_s=1 / 15,
                        mean_session_s=120.0, pool=POOL))
        runs = [serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                            serve_config(preemption="evict_lowest_tier"))
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_summary_shows_preemption_line(self):
        requests = [request(0, 0.0, 100.0, tier="bronze"),
                    request(1, 10.0, 20.0, tier="gold")]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(capacity=1,
                                          preemption="evict_lowest_tier"))
        assert "preemption:" in report.summary()
        assert "eviction fairness" in report.summary()


class TestPreemptionGapEdge:
    def test_gap_delayed_departure_completes_instead_of_evicting(self):
        """Regression: an eviction landing inside a decision gap *after*
        the victim's scheduled departure must complete the victim (it
        already served its full duration) rather than park a negative
        remainder that would later read as eviction collateral."""
        # b's 20 s session ends inside the ~32 s initial-plan gap; the
        # gold arrival at t=10 is processed when the gap closes, with b
        # still occupying the only slot past its own departure time.
        requests = [request(0, 0.0, 20.0, tier="bronze"),
                    request(1, 10.0, 50.0, tier="gold")]
        report = serve_trace(requests, FullReplan(rankmap()), PLATFORM,
                             serve_config(capacity=1,
                                          preemption="evict_lowest_tier"))
        bronze, gold = report.sessions
        assert bronze.outcome == "served"
        assert bronze.evictions == 0
        assert report.evictions == 0 and report.evicted == 0
        assert gold.admitted_s is not None

    def test_renegotiation_voids_pending_tier_shift(self):
        """Regression: demoting a victim renegotiates its whole contract
        — a pre-scheduled mid-session promotion must not silently fire
        later and undo the demotion."""
        from repro.baselines import GpuBaseline

        requests = [request(0, 0.0, 200.0, tier="silver",
                            shift=(60.0, "gold")),
                    request(1, 10.0, 50.0, tier="gold")]
        report = serve_trace(requests, FullReplan(GpuBaseline()), PLATFORM,
                             serve_config(capacity=1,
                                          preemption="renegotiate"))
        victim = report.sessions[0]
        assert victim.demotions == 1
        assert victim.tier == "bronze"     # stays at the floor


class TestCustomLadderRenegotiation:
    def test_renegotiate_derives_floor_from_custom_ladder(self):
        """Regression: the demotion floor follows the controller's own
        tier ladder instead of assuming a tier named 'bronze' exists."""
        from repro.workloads.sla import SlaClass

        ladder = (SlaClass("plat", priority=0.8, min_potential=0.3),
                  SlaClass("mid", priority=0.4, min_potential=0.1),
                  SlaClass("basic", priority=0.1, min_potential=0.01))
        c = AdmissionController(
            AdmissionConfig(capacity=1, preemption="renegotiate"),
            tiers=ladder)
        assert c.floor_tier().name == "basic"
        plan = c.plan_preemption("plat", 1, True,
                                 (live_view("a", 0, "mid", 0.4),))
        assert plan.action == "demote" and plan.demote_to == "basic"
        # A victim already at the custom floor is still not demotable.
        assert c.plan_preemption("plat", 1, True,
                                 (live_view("a", 0, "basic", 0.1),)) is None


# ------------------------------------------------------------ streaming
class TestStreamingLoop:
    """The streaming rearchitecture: generator-fed arrivals, keyed
    waiting room, scheduled queue timeouts, vectorized accounting."""

    @staticmethod
    def _fast_policy():
        from repro.baselines import GpuBaseline

        return FullReplan(GpuBaseline())

    def _sampled(self, seed=9, shift_prob=0.3):
        return sample_session_requests(
            np.random.default_rng(seed),
            TraceConfig(horizon_s=360.0, arrival_rate_per_s=1 / 8,
                        mean_session_s=120.0, pool=POOL),
            tier_shift_prob=shift_prob)

    def test_generator_input_matches_list_input(self):
        requests = self._sampled()
        config = serve_config(capacity=2, queue_limit=4, max_wait=60.0,
                              horizon=360.0, preemption="evict_lowest_tier")
        cache = EvaluationCache(PLATFORM)
        from_list = serve_trace(requests, self._fast_policy(), PLATFORM,
                                config, cache=cache)
        from_stream = serve_trace((r for r in requests),
                                  self._fast_policy(), PLATFORM, config,
                                  cache=cache)
        assert from_list == from_stream

    def test_streaming_matches_reference_loop(self):
        from repro.serve import serve_trace_reference

        requests = self._sampled(seed=21)
        config = serve_config(capacity=2, queue_limit=4, max_wait=60.0,
                              horizon=360.0, preemption="renegotiate")
        cache = EvaluationCache(PLATFORM)
        streamed = serve_trace((r for r in requests), self._fast_policy(),
                               PLATFORM, config, cache=cache)
        reference = serve_trace_reference(requests, self._fast_policy(),
                                          PLATFORM, config, cache=cache)
        assert streamed == reference

    def test_disordered_stream_rejected(self):
        disordered = iter([request(1, 50.0, 10.0), request(0, 10.0, 10.0)])
        with pytest.raises(ValueError, match="ordered"):
            serve_trace(disordered, self._fast_policy(), PLATFORM,
                        serve_config())

    def test_stream_tier_validated_at_pull(self):
        bad = iter([request(0, 1.0, 10.0, tier="platinum")])
        with pytest.raises(ValueError, match="unknown SLA tier"):
            serve_trace(bad, self._fast_policy(), PLATFORM, serve_config())

    def test_record_timeline_off_drops_segments_only(self):
        requests = self._sampled(seed=2)
        base = serve_config(capacity=2, queue_limit=4, max_wait=60.0,
                            horizon=360.0)
        from dataclasses import replace as dc_replace

        with_tl = serve_trace(requests, self._fast_policy(), PLATFORM,
                              base)
        without_tl = serve_trace(requests, self._fast_policy(), PLATFORM,
                                 dc_replace(base, record_timeline=False))
        assert without_tl.timeline.segments == []
        assert with_tl.timeline.segments != []
        assert without_tl.sessions == with_tl.sessions
        assert without_tl.replans == with_tl.replans
        assert without_tl.total_decision_seconds \
            == with_tl.total_decision_seconds

    def test_out_of_horizon_stream_tail_accounted(self):
        stream = iter([request(0, 10.0, 20.0), request(1, 150.0, 20.0),
                       request(2, 160.0, 20.0)])
        report = serve_trace(stream, self._fast_policy(), PLATFORM,
                             serve_config(horizon=100.0))
        assert report.arrivals == 3
        assert report.out_of_horizon == 2
        assert report.sessions[0].outcome == "served"


class TestQueueTimeoutEvents:
    """Regression lock on the scheduled-timeout bugfix: abandonment
    happens (and is stamped) at ``enqueue + max_queue_wait_s``, not at
    whatever later event used to scan the queue — or never."""

    @staticmethod
    def _fast_policy():
        from repro.baselines import GpuBaseline

        return FullReplan(GpuBaseline())

    def test_quiet_tail_abandons_at_true_deadline(self):
        """The seed-loop bug: with no event after the deadline, the
        queued session used to surface as 'queued' at finalize.  The
        timeout event fires in the quiet stretch and stamps the time."""
        requests = [request(0, 10.0, 1000.0), request(1, 20.0, 50.0)]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1, max_wait=60.0,
                                          horizon=400.0))
        waiter = report.sessions[1]
        assert waiter.outcome == "abandoned"
        assert waiter.queue_wait_s == pytest.approx(60.0)
        assert waiter.abandoned_s == pytest.approx(80.0)

    def test_abandonment_not_delayed_by_late_events(self):
        """With a distant next event (first departure at t=310), the
        abandonment is still stamped at its deadline, not detection."""
        requests = [request(0, 10.0, 300.0), request(1, 20.0, 50.0),
                    request(2, 330.0, 10.0)]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1, max_wait=60.0,
                                          horizon=400.0))
        waiter = report.sessions[1]
        assert waiter.outcome == "abandoned"
        assert waiter.abandoned_s == pytest.approx(80.0)

    def test_parked_eviction_timeout_stamps_abandonment(self):
        """A suspended (evicted) session that waits out the timeout is
        eviction collateral — and now carries its abandonment time."""
        requests = [request(0, 0.0, 200.0, tier="bronze"),
                    request(1, 10.0, 500.0, tier="gold")]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1, max_wait=50.0,
                                          horizon=400.0,
                                          preemption="evict_lowest_tier"))
        bronze = report.sessions[0]
        assert bronze.outcome == "evicted"
        assert bronze.evictions == 1 and bronze.resumptions == 0
        assert bronze.queue_wait_s == pytest.approx(50.0)
        assert bronze.abandoned_s == pytest.approx(60.0)

    def test_still_queued_at_horizon_not_abandoned(self):
        """A deadline at or past the horizon never fires: the session
        ends 'queued' with its observed wait, no abandonment stamp."""
        requests = [request(0, 10.0, 1000.0), request(1, 20.0, 50.0)]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1, max_wait=500.0,
                                          horizon=400.0))
        waiter = report.sessions[1]
        assert waiter.outcome == "queued"
        assert waiter.abandoned_s is None
        assert waiter.queue_wait_s == pytest.approx(380.0)


class TestKeyedWaitingRoom:
    """Regression lock on the drain-order bugfix: the keyed heap drains
    exactly the (tier desc, enqueue time, session id) order the seed
    loop's per-admission re-sort produced."""

    @staticmethod
    def _fast_policy():
        from repro.baselines import GpuBaseline

        return FullReplan(GpuBaseline())

    def test_drain_order_tier_then_fifo(self):
        requests = [request(0, 0.0, 100.0, tier="gold"),
                    request(4, 5.0, 30.0, tier="silver"),
                    request(1, 10.0, 30.0, tier="silver"),
                    request(3, 15.0, 30.0, tier="gold"),
                    request(2, 20.0, 30.0, tier="gold")]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1, queue_limit=6,
                                          max_wait=300.0, horizon=400.0))
        admitted = sorted(
            (s for s in report.sessions if s.admitted_s is not None),
            key=lambda s: s.admitted_s)
        # Gold before silver, FIFO within each tier.
        assert [s.session_id for s in admitted] == [0, 3, 2, 4, 1]
        assert all(s.outcome == "served" for s in report.sessions)

    def test_drain_order_matches_reference_resort(self):
        from repro.serve import serve_trace_reference

        requests = [request(0, 0.0, 100.0, tier="gold"),
                    request(4, 5.0, 30.0, tier="silver"),
                    request(1, 10.0, 30.0, tier="silver"),
                    request(3, 15.0, 30.0, tier="gold"),
                    request(2, 20.0, 30.0, tier="gold")]
        config = serve_config(capacity=1, queue_limit=6, max_wait=300.0,
                              horizon=400.0)
        heap_report = serve_trace(requests, self._fast_policy(), PLATFORM,
                                  config)
        sort_report = serve_trace_reference(requests, self._fast_policy(),
                                            PLATFORM, config)
        assert heap_report == sort_report

    def test_resumed_session_drains_by_parking_time(self):
        """A parked eviction re-enters the drain order keyed by its
        eviction (re-enqueue) time, not its original arrival — so the
        session suspended at t=10 resumes before the fresh same-tier
        arrival queued at t=20."""
        requests = [request(0, 0.0, 300.0, tier="silver"),
                    request(1, 10.0, 40.0, tier="gold"),
                    request(2, 20.0, 40.0, tier="silver")]
        report = serve_trace(requests, self._fast_policy(), PLATFORM,
                             serve_config(capacity=1, queue_limit=6,
                                          max_wait=350.0, horizon=400.0,
                                          preemption="evict_lowest_tier"))
        first, gold, second = report.sessions
        assert first.evictions == 1 and first.resumptions == 1
        assert gold.outcome == "served"
        # The suspended session resumes when gold departs (~t=50) and
        # holds the node for its remaining ~290 s; the fresh silver is
        # only admitted after that, not at the gold departure.
        assert second.admitted_s is not None
        assert second.admitted_s > 300.0
