"""Tests for the discrete-event pipeline simulator and its agreement with
the analytical steady-state engine."""

import numpy as np
import pytest

from repro.hw import orange_pi_5
from repro.mapping import (
    gpu_only_mapping,
    random_partition_mapping,
    single_component_mapping,
)
from repro.sim import DesConfig, simulate, simulate_des
from repro.zoo import get_model

PLATFORM = orange_pi_5()


def wl(*names):
    return [get_model(n) for n in names]


class TestDesConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DesConfig(horizon_s=0)
        with pytest.raises(ValueError):
            DesConfig(warmup_s=-1.0)
        with pytest.raises(ValueError):
            DesConfig(horizon_s=10.0, warmup_s=10.0)
        with pytest.raises(ValueError):
            DesConfig(buffer_depth=0)

    def test_defaults_are_sane(self):
        config = DesConfig()
        assert config.warmup_s < config.horizon_s
        assert config.buffer_depth >= 1


class TestDesBasics:
    def test_determinism(self):
        workload = wl("alexnet", "squeezenet")
        mapping = gpu_only_mapping(workload)
        a = simulate_des(workload, mapping, PLATFORM)
        b = simulate_des(workload, mapping, PLATFORM)
        np.testing.assert_array_equal(a.rates, b.rates)
        np.testing.assert_array_equal(a.completions, b.completions)

    def test_solo_dnn_matches_ideal_throughput(self):
        workload = wl("alexnet")
        result = simulate_des(workload, gpu_only_mapping(workload), PLATFORM)
        ideal = PLATFORM.ideal_throughput(workload[0])
        assert result.rates[0] == pytest.approx(ideal, rel=0.10)

    def test_rates_are_measured_window_counts(self):
        workload = wl("alexnet", "squeezenet")
        config = DesConfig(horizon_s=20.0, warmup_s=4.0)
        result = simulate_des(workload, gpu_only_mapping(workload),
                              PLATFORM, config)
        assert result.measured_seconds == pytest.approx(16.0)
        # completions include warm-up; measured rates cannot exceed them.
        assert np.all(result.completions >= result.rates
                      * result.measured_seconds - 1)

    def test_latency_percentiles_ordered(self):
        workload = wl("alexnet", "resnet50")
        rng = np.random.default_rng(2)
        mapping = random_partition_mapping(workload, 3, rng)
        result = simulate_des(workload, mapping, PLATFORM)
        for name in result.workload_names:
            p50 = result.latency_percentile(name, 50)
            p95 = result.latency_percentile(name, 95)
            p99 = result.latency_percentile(name, 99)
            assert 0 < p50 <= p95 <= p99
            assert result.mean_latency(name) > 0

    def test_latency_bounded_below_by_service_chain(self):
        """One inference must spend at least its total service time."""
        workload = wl("resnet50")
        rng = np.random.default_rng(5)
        mapping = random_partition_mapping(workload, 3, rng)
        from repro.sim import compute_stage_demands

        demands = compute_stage_demands(workload, mapping, PLATFORM)
        floor = sum(d.seconds_per_inference for d in demands)
        result = simulate_des(workload, mapping, PLATFORM)
        assert result.latency_percentile("resnet50", 0) >= floor * 0.999

    def test_empty_latency_series_gives_nan(self):
        # A horizon too short for inception to finish even once.
        workload = wl("inception_v4")
        config = DesConfig(horizon_s=0.01, warmup_s=0.0)
        result = simulate_des(workload,
                              single_component_mapping(workload, 2),
                              PLATFORM, config)
        assert np.isnan(result.latency_percentile("inception_v4", 50))
        assert np.isnan(result.mean_latency("inception_v4"))
        assert result.rates[0] == 0.0

    def test_interference_toggle_monotone(self):
        workload = wl("alexnet", "squeezenet", "mobilenet")
        mapping = gpu_only_mapping(workload)
        on = simulate_des(workload, mapping, PLATFORM,
                          DesConfig(apply_interference=True))
        off = simulate_des(workload, mapping, PLATFORM,
                           DesConfig(apply_interference=False))
        assert off.rates.sum() >= on.rates.sum()

    def test_deeper_buffers_do_not_hurt(self):
        workload = wl("alexnet", "resnet50")
        rng = np.random.default_rng(11)
        mapping = random_partition_mapping(workload, 3, rng)
        shallow = simulate_des(workload, mapping, PLATFORM,
                               DesConfig(buffer_depth=1))
        deep = simulate_des(workload, mapping, PLATFORM,
                            DesConfig(buffer_depth=4))
        assert deep.rates.sum() >= shallow.rates.sum() * 0.98

    def test_average_throughput_property(self):
        workload = wl("alexnet", "squeezenet")
        result = simulate_des(workload, gpu_only_mapping(workload), PLATFORM)
        assert result.average_throughput == pytest.approx(
            float(result.rates.mean()))


class TestDesVsAnalytical:
    """The two simulators share physics but not scheduling; they must agree
    on magnitudes and, more importantly, on mapping ordering."""

    def test_gpu_baseline_agreement(self):
        workload = wl("alexnet", "squeezenet", "resnet50")
        mapping = gpu_only_mapping(workload)
        analytical = simulate(workload, mapping, PLATFORM).rates
        des = simulate_des(workload, mapping, PLATFORM).rates
        np.testing.assert_allclose(des, analytical, rtol=0.15)

    def test_random_mapping_rate_agreement(self):
        workload = wl("alexnet", "squeezenet", "mobilenet")
        rng = np.random.default_rng(23)
        rel_errors = []
        for _ in range(8):
            mapping = random_partition_mapping(workload, 3, rng)
            analytical = simulate(workload, mapping, PLATFORM).rates
            des = simulate_des(workload, mapping, PLATFORM).rates
            rel_errors.append(
                np.abs(des - analytical) / np.maximum(analytical, 1e-9))
        assert float(np.mean(rel_errors)) < 0.25

    def test_mapping_ordering_agreement(self):
        """Average-T ordering across mappings must correlate strongly —
        this is what the manager actually relies on."""
        from repro.estimator.metrics import spearman_r

        workload = wl("alexnet", "squeezenet", "resnet50")
        rng = np.random.default_rng(31)
        analytical_t, des_t = [], []
        for _ in range(12):
            mapping = random_partition_mapping(workload, 3, rng)
            analytical_t.append(
                simulate(workload, mapping, PLATFORM).average_throughput)
            des_t.append(
                simulate_des(workload, mapping,
                             PLATFORM).average_throughput)
        rho = spearman_r(np.array(analytical_t), np.array(des_t))
        assert rho > 0.8

    def test_des_reproduces_baseline_collapse(self):
        """The motivation result: partitioning beats all-on-GPU, in the
        event simulation too, for the paper's Sec. II workload."""
        workload = wl("squeezenet_v2", "inception_v4", "resnet50", "vgg16")
        base = simulate_des(workload, gpu_only_mapping(workload),
                            PLATFORM).average_throughput
        rng = np.random.default_rng(7)
        wins = 0
        trials = 10
        for _ in range(trials):
            mapping = random_partition_mapping(workload, 3, rng)
            t = simulate_des(workload, mapping, PLATFORM).average_throughput
            wins += int(t > base)
        assert wins >= 6  # paper: 91 % of random mappings beat the baseline
