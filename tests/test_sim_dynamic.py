"""Unit tests for the dynamic scenario engine."""

import numpy as np
import pytest

from repro.hw import orange_pi_5
from repro.mapping import gpu_only_mapping
from repro.sim import (
    MappingDecision,
    arrival,
    departure,
    priority_change,
    run_dynamic_scenario,
)
from repro.zoo import get_model

PLATFORM = orange_pi_5()


def gpu_planner(decision_seconds=0.0):
    """Trivial planner: everything on the GPU."""

    def plan(workload, priorities):
        return MappingDecision(gpu_only_mapping(workload), decision_seconds)

    return plan


class TestScenarioBasics:
    def test_single_arrival_runs_at_ideal(self):
        model = get_model("resnet50")
        tl = run_dynamic_scenario([arrival(0.0, model)], gpu_planner(),
                                  PLATFORM, horizon=100.0)
        assert tl.potential_at("resnet50", 50.0) == pytest.approx(1.0)
        assert tl.min_potential("resnet50") == pytest.approx(1.0)

    def test_empty_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_dynamic_scenario([], gpu_planner(), PLATFORM, 10.0)

    def test_arrival_lowers_existing_dnn(self):
        a, b = get_model("resnet50"), get_model("vgg16")
        tl = run_dynamic_scenario(
            [arrival(0.0, a), arrival(100.0, b)], gpu_planner(),
            PLATFORM, horizon=200.0,
        )
        before = tl.potential_at("resnet50", 50.0)
        after = tl.potential_at("resnet50", 150.0)
        assert after < before

    def test_departure_restores_throughput(self):
        a, b = get_model("resnet50"), get_model("vgg16")
        tl = run_dynamic_scenario(
            [arrival(0.0, a), arrival(100.0, b), departure(200.0, b)],
            gpu_planner(), PLATFORM, horizon=300.0,
        )
        shared = tl.potential_at("resnet50", 150.0)
        alone = tl.potential_at("resnet50", 250.0)
        assert alone > shared
        assert tl.potential_at("vgg16", 250.0) is None

    def test_decision_gap_blocks_new_arrival(self):
        a, b = get_model("resnet50"), get_model("vgg16")
        tl = run_dynamic_scenario(
            [arrival(0.0, a), arrival(100.0, b)], gpu_planner(30.0),
            PLATFORM, horizon=200.0,
        )
        # During the 30 s decision window the arriving DNN is idle.
        assert tl.potential_at("vgg16", 110.0) == 0.0
        assert tl.potential_at("vgg16", 150.0) > 0.0
        # The resident DNN keeps running on the old mapping.
        assert tl.potential_at("resnet50", 110.0) > 0.0

    def test_priority_event_triggers_replan(self):
        calls = []

        def recording_planner(workload, priorities):
            calls.append(np.array(priorities))
            return MappingDecision(gpu_only_mapping(workload))

        model = get_model("resnet50")
        run_dynamic_scenario(
            [arrival(0.0, model),
             priority_change(50.0, {"resnet50": 0.9})],
            recording_planner, PLATFORM, horizon=100.0,
        )
        assert len(calls) == 2
        assert calls[1][0] == pytest.approx(0.9)

    def test_events_sorted_automatically(self):
        a, b = get_model("resnet50"), get_model("mobilenet")
        tl = run_dynamic_scenario(
            [arrival(100.0, b), arrival(0.0, a)], gpu_planner(),
            PLATFORM, horizon=150.0,
        )
        assert tl.potential_at("mobilenet", 50.0) is None
        assert tl.potential_at("mobilenet", 120.0) > 0

    def test_malformed_events_rejected(self):
        with pytest.raises(ValueError):
            run_dynamic_scenario(
                [arrival(0.0, get_model("alexnet")),
                 priority_change(1.0, {})],
                gpu_planner(), PLATFORM, 10.0,
            )


class TestScenarioEdgeCases:
    def test_departure_of_never_admitted_model_is_noop(self):
        a = get_model("resnet50")
        tl = run_dynamic_scenario(
            [arrival(0.0, a), departure(50.0, get_model("vgg16"))],
            gpu_planner(), PLATFORM, horizon=100.0,
        )
        # The resident keeps running; the phantom model never appears.
        assert tl.potential_at("resnet50", 75.0) == pytest.approx(1.0)
        assert tl.potential_at("vgg16", 75.0) is None
        assert all("vgg16" not in seg.names for seg in tl.segments)

    def test_departure_from_empty_system(self):
        tl = run_dynamic_scenario(
            [departure(10.0, get_model("vgg16")),
             arrival(20.0, get_model("resnet50"))],
            gpu_planner(), PLATFORM, horizon=50.0,
        )
        assert tl.potential_at("resnet50", 40.0) == pytest.approx(1.0)

    def test_priority_event_for_absent_model_keeps_running(self):
        calls = []

        def recording_planner(workload, priorities):
            calls.append((tuple(m.name for m in workload),
                          np.array(priorities)))
            return MappingDecision(gpu_only_mapping(workload))

        a = get_model("resnet50")
        tl = run_dynamic_scenario(
            [arrival(0.0, a), priority_change(50.0, {"vgg16": 0.9})],
            recording_planner, PLATFORM, horizon=100.0,
        )
        # The absent model's priority is recorded but does not leak into
        # the active workload's vector, and the timeline is unaffected.
        assert len(calls) == 2
        assert calls[1][0] == ("resnet50",)
        assert calls[1][1][0] == pytest.approx(0.1)
        assert tl.potential_at("resnet50", 75.0) == pytest.approx(1.0)

    def test_coincident_events_produce_no_zero_length_segments(self):
        a, b = get_model("resnet50"), get_model("vgg16")
        tl = run_dynamic_scenario(
            [arrival(0.0, a), arrival(100.0, b), departure(100.0, a),
             priority_change(100.0, {"vgg16": 0.8})],
            gpu_planner(), PLATFORM, horizon=200.0,
        )
        assert all(seg.duration > 0 for seg in tl.segments)
        for prev, nxt in zip(tl.segments, tl.segments[1:]):
            assert prev.t_end == pytest.approx(nxt.t_start)
        # After the coincident batch only vgg16 remains.
        assert tl.potential_at("resnet50", 150.0) is None
        assert tl.potential_at("vgg16", 150.0) == pytest.approx(1.0)

    def test_event_at_horizon_boundary_ignored(self):
        a = get_model("resnet50")
        tl = run_dynamic_scenario(
            [arrival(0.0, a), arrival(150.0, get_model("vgg16"))],
            gpu_planner(), PLATFORM, horizon=100.0,
        )
        assert tl.segments[-1].t_end == pytest.approx(100.0)
        assert all("vgg16" not in seg.names for seg in tl.segments)


class TestTimelineQueries:
    def _timeline(self):
        a, b = get_model("resnet50"), get_model("vgg16")
        return run_dynamic_scenario(
            [arrival(0.0, a), arrival(100.0, b)], gpu_planner(),
            PLATFORM, horizon=200.0,
        )

    def test_series_has_nan_before_arrival(self):
        tl = self._timeline()
        times = np.array([50.0, 150.0])
        series = tl.potential_series("vgg16", times)
        assert np.isnan(series[0])
        assert series[1] > 0

    def test_time_average_throughput_positive(self):
        tl = self._timeline()
        assert tl.time_average_throughput() > 0

    def test_final_potentials_contains_both(self):
        tl = self._timeline()
        final = tl.final_potentials()
        assert set(final) == {"resnet50", "vgg16"}

    def test_segments_contiguous(self):
        tl = self._timeline()
        for prev, nxt in zip(tl.segments, tl.segments[1:]):
            assert prev.t_end == pytest.approx(nxt.t_start)
        assert tl.segments[-1].t_end == pytest.approx(200.0)
