"""Tests for the fleet-scale scenario runner (specs, pool, determinism)."""

import pickle

import numpy as np
import pytest

from repro.sim import compiled_provider

from repro.runner import (
    MANAGER_SPECS,
    PLATFORM_SPECS,
    DynamicScenario,
    FleetScenario,
    Scenario,
    ScenarioResult,
    ScenarioRunner,
    dynamic_sweep_scenarios,
    execute_dynamic_scenario,
    execute_scenario,
    fleet_sweep_scenarios,
    mix_scenarios,
    summarise,
    summarise_dynamic,
    summarise_fleet,
)

FAST = dict(search_iterations=6, search_rollouts=2)

SMALL_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")

DYNAMIC_FAST = dict(horizon_s=240.0, arrival_rate_per_s=1 / 30,
                    mean_session_s=100.0, pool=SMALL_POOL, capacity=2,
                    search_iterations=6, search_rollouts=2)


class TestScenarioSpec:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="x", workload=())

    def test_priority_length_validated(self):
        with pytest.raises(ValueError):
            Scenario(name="x", workload=("alexnet", "mobilenet"),
                     priorities=(1.0,))

    def test_specs_are_picklable(self):
        import pickle

        s = Scenario(name="x", workload=("alexnet",), **FAST)
        assert pickle.loads(pickle.dumps(s)) == s


class TestExecuteScenario:
    def test_baseline_scenario(self):
        s = Scenario(name="b", workload=("alexnet", "mobilenet"),
                     manager="baseline", **FAST)
        r = execute_scenario(s)
        assert r.manager == "baseline"
        assert r.mapping.num_dnns == 2
        assert len(r.rates) == 2 and min(r.rates) > 0
        assert r.average_throughput == pytest.approx(np.mean(r.rates))
        assert r.min_potential == pytest.approx(min(r.potentials))

    def test_static_rankmap_uses_priorities(self):
        s = Scenario(name="s", workload=("alexnet", "mobilenet"),
                     manager="rankmap_s", priorities=(0.8, 0.2), **FAST)
        r = execute_scenario(s)
        assert r.decision_seconds > 0

    def test_search_manager_reports_cache_use(self):
        s = Scenario(name="d", workload=("alexnet", "mobilenet"),
                     manager="rankmap_d", **FAST)
        r = execute_scenario(s)
        assert 0.0 <= r.cache_hit_rate <= 1.0

    def test_unknown_manager_rejected(self):
        with pytest.raises(ValueError, match="unknown manager"):
            execute_scenario(Scenario(name="x", workload=("alexnet",),
                                      manager="nope", **FAST))

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError, match="unknown platform"):
            execute_scenario(Scenario(name="x", workload=("alexnet",),
                                      platform="nope", **FAST))

    def test_rosters_exposed(self):
        assert "rankmap_d" in MANAGER_SPECS
        assert "orange_pi_5" in PLATFORM_SPECS


class TestScenarioRunner:
    def _fleet(self):
        return mix_scenarios(("baseline", "rankmap_d"), sizes=(2,),
                             mixes_per_size=2, **FAST)

    def test_parallel_equals_serial(self):
        """Pool size must not affect any result bit."""
        fleet = self._fleet()
        serial = ScenarioRunner(max_workers=1).run(fleet)
        parallel = ScenarioRunner(max_workers=2).run(fleet)
        assert [(r.name, r.assignments, r.rates) for r in serial] \
            == [(r.name, r.assignments, r.rates) for r in parallel]

    def test_results_in_input_order(self):
        fleet = self._fleet()
        results = ScenarioRunner(max_workers=2).run(fleet)
        assert [r.name for r in results] == [s.name for s in fleet]

    def test_empty_run(self):
        assert ScenarioRunner().run([]) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ScenarioRunner(max_workers=0)


class TestExperimentContextFleetSweep:
    def test_fleet_sweep_uses_preset_and_aggregates(self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        results, summary = ctx.fleet_sweep(
            managers=("baseline",), sizes=(2,), mixes_per_size=1,
            max_workers=1)
        assert len(results) == 1
        assert summary[0]["manager"] == "baseline"
        assert summary[0]["scenarios"] == 1
        # Scenario search budget comes from the preset.
        scenario_like = results[0]
        assert scenario_like.platform == "orange_pi_5"

    def test_fleet_sweep_follows_context_platform(self, tmp_path):
        from repro.experiments import ExperimentContext
        from repro.hw import jetson_class

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                platform=jetson_class(),
                                use_artifact_cache=False)
        results, _ = ctx.fleet_sweep(managers=("baseline",), sizes=(2,),
                                     mixes_per_size=1, max_workers=1)
        assert results[0].platform == "jetson_class"

    def test_fleet_sweep_rejects_non_preset_platform(self, tmp_path):
        import dataclasses

        from repro.experiments import ExperimentContext
        from repro.hw import orange_pi_5

        custom = dataclasses.replace(orange_pi_5(), name="bespoke_board")
        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                platform=custom, use_artifact_cache=False)
        with pytest.raises(ValueError, match="not a runner preset"):
            ctx.fleet_sweep(managers=("baseline",), sizes=(2,),
                            mixes_per_size=1, max_workers=1)


class TestDynamicScenario:
    def test_spec_validated(self):
        with pytest.raises(ValueError):
            DynamicScenario(name="x", horizon_s=0.0)
        with pytest.raises(ValueError):
            DynamicScenario(name="x", arrival_rate_per_s=0.0)
        with pytest.raises(ValueError):
            DynamicScenario(name="x", capacity=0)

    def test_specs_are_picklable(self):
        import pickle

        s = DynamicScenario(name="d", **DYNAMIC_FAST)
        assert pickle.loads(pickle.dumps(s)) == s

    def test_execute_produces_report(self):
        s = DynamicScenario(name="d", manager="rankmap_d", policy="warm",
                            **DYNAMIC_FAST)
        r = execute_dynamic_scenario(s)
        assert r.policy == "warm"
        assert r.report.arrivals > 0
        assert r.report.replans > 0
        assert r.wall_seconds > 0
        assert 0.0 <= r.eval_cache_hit_rate <= 1.0

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError, match="unknown platform"):
            execute_dynamic_scenario(
                DynamicScenario(name="x", platform="nope", **DYNAMIC_FAST))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown replan policy"):
            execute_dynamic_scenario(
                DynamicScenario(name="x", policy="nope", **DYNAMIC_FAST))

    def test_parallel_equals_serial(self):
        """Satellite regression: the same DynamicScenario through 1 worker
        and N workers yields identical ServeReports."""
        specs = dynamic_sweep_scenarios(
            policies=("full", "warm"), managers=("rankmap_d",),
            traces_per_cell=1, horizon_s=240.0,
            arrival_rate_per_s=1 / 30, pool=SMALL_POOL, capacity=2,
            search_iterations=6)
        serial = ScenarioRunner(max_workers=1).run_dynamic(specs)
        parallel = ScenarioRunner(max_workers=2).run_dynamic(specs)
        assert [r.name for r in parallel] == [s.name for s in specs]
        assert [r.report for r in serial] == [r.report for r in parallel]

    def test_workers_load_persisted_cache(self, tmp_path):
        """Acceptance: a cache persisted by one run warms fresh worker
        processes, which report hit_rate > 0 on their first plans."""
        from repro.hw import orange_pi_5
        from repro.sim import EvaluationCache

        path = tmp_path / "cache.pkl"
        cold = DynamicScenario(name="warmup", manager="rankmap_d",
                               **DYNAMIC_FAST)
        platform = orange_pi_5()
        cache = EvaluationCache(platform)
        # Warm the cache inline with the identical spec, then persist it.
        from repro.runner.runner import build_manager
        from repro.serve import build_replan_policy, serve_trace, ServeConfig, AdmissionConfig
        from repro.workloads import TraceConfig, sample_session_requests

        manager = build_manager(cold, platform, cache)
        requests = sample_session_requests(
            np.random.default_rng(cold.seed + 17),
            TraceConfig(horizon_s=cold.horizon_s,
                        arrival_rate_per_s=cold.arrival_rate_per_s,
                        mean_session_s=cold.mean_session_s,
                        max_concurrent=cold.capacity, pool=SMALL_POOL))
        serve_trace(requests, build_replan_policy("full", manager), platform,
                    ServeConfig(horizon_s=cold.horizon_s,
                                admission=AdmissionConfig(capacity=2),
                                pool=SMALL_POOL, seed=cold.seed),
                    cache=cache)
        cache.save(path)

        warmed = [DynamicScenario(name=f"w{i}", manager="rankmap_d",
                                  cache_path=str(path), **DYNAMIC_FAST)
                  for i in range(2)]
        results = ScenarioRunner(max_workers=2).run_dynamic(warmed)
        for r in results:
            assert r.eval_cache_preloaded > 0
            assert r.eval_cache_hit_rate > 0

    def test_mismatched_cache_platform_starts_cold(self, tmp_path):
        """A cache persisted for one platform must not abort a node on
        another platform (heterogeneous fleets share one cache_path) —
        the node starts cold and reports nothing preloaded."""
        from repro.hw import orange_pi_5
        from repro.sim import EvaluationCache

        path = tmp_path / "orange.pkl"
        EvaluationCache(orange_pi_5()).save(path)
        spec = DynamicScenario(name="jet", manager="baseline",
                               platform="jetson_class",
                               cache_path=str(path), **DYNAMIC_FAST)
        result = execute_dynamic_scenario(spec)
        assert result.eval_cache_preloaded == 0
        assert result.report.arrivals > 0

    def test_corrupt_cache_file_starts_cold(self, tmp_path):
        """A non-pickle cache file must downgrade to a cold start too."""
        path = tmp_path / "garbage.pkl"
        path.write_bytes(b"not a pickle at all")
        spec = DynamicScenario(name="g", manager="baseline",
                               cache_path=str(path), **DYNAMIC_FAST)
        result = execute_dynamic_scenario(spec)
        assert result.eval_cache_preloaded == 0
        assert result.report.arrivals > 0

    def test_summarise_dynamic_groups_by_policy(self):
        # "warm" needs a RankMap manager, so the cheap baseline cells use
        # the full and plan-cache policies.
        specs = dynamic_sweep_scenarios(
            policies=("full", "cache"), managers=("baseline",),
            traces_per_cell=2, horizon_s=240.0,
            arrival_rate_per_s=1 / 40, pool=SMALL_POOL, capacity=2,
            search_iterations=6)
        rows = summarise_dynamic(
            ScenarioRunner(max_workers=1).run_dynamic(specs))
        assert [(r["manager"], r["policy"]) for r in rows] == \
            [("baseline", "cache"), ("baseline", "full")]
        assert all(r["scenarios"] == 2 for r in rows)

    def test_cells_share_traces(self):
        specs = dynamic_sweep_scenarios(policies=("full", "warm"),
                                        traces_per_cell=2)
        by_trace = {}
        for s in specs:
            by_trace.setdefault(s.name.split("_")[0], set()).add(s.seed)
        assert all(len(seeds) == 1 for seeds in by_trace.values())

    def test_experiment_context_serve_sweep(self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        results, summary = ctx.serve_sweep(
            policies=("full",), managers=("baseline",), traces_per_cell=1,
            horizon_s=240.0, pool=SMALL_POOL, max_workers=1)
        assert len(results) == 1
        assert summary[0]["policy"] == "full"
        assert results[0].report.arrivals > 0


def _fleet_nodes(n=3):
    return tuple(DynamicScenario(
        name=f"node{i}", manager="rankmap_d", policy="warm",
        platform=("orange_pi_5" if i % 2 == 0 else "jetson_class"),
        seed=i, pool=SMALL_POOL, capacity=2,
        search_iterations=6, search_rollouts=2) for i in range(n))


def _fleet(routing="least_loaded", fail_at=()):
    return FleetScenario(name=f"f_{routing}", nodes=_fleet_nodes(),
                         routing=routing, seed=0, horizon_s=240.0,
                         arrival_rate_per_s=1 / 10, mean_session_s=90.0,
                         fail_at=fail_at)


class TestFleetScenario:
    def test_spec_validated(self):
        with pytest.raises(ValueError):
            FleetScenario(name="x", nodes=())
        with pytest.raises(ValueError):
            FleetScenario(name="x", nodes=_fleet_nodes(), horizon_s=0.0)
        with pytest.raises(ValueError):
            FleetScenario(name="x", nodes=_fleet_nodes(),
                          fail_at=((7, 10.0),))
        with pytest.raises(ValueError):
            FleetScenario(name="x", nodes=_fleet_nodes(),
                          fail_at=((0, 0.0),))
        with pytest.raises(ValueError, match="duplicate fail_at"):
            FleetScenario(name="x", nodes=_fleet_nodes(),
                          fail_at=((0, 60.0), (0, 200.0)))

    def test_specs_are_picklable(self):
        import pickle

        fleet = _fleet()
        assert pickle.loads(pickle.dumps(fleet)) == fleet

    def test_run_fleet_produces_report(self):
        results = ScenarioRunner(max_workers=1).run_fleet([_fleet()])
        assert len(results) == 1
        report = results[0].report
        assert results[0].routing == "least_loaded"
        assert len(report.nodes) == 3
        assert report.admitted > 0
        assert results[0].wall_seconds > 0

    def test_parallel_equals_serial(self):
        """Acceptance: fleet reports are bit-identical for 1 vs N workers."""
        fleets = [_fleet("round_robin"), _fleet("least_loaded"),
                  _fleet("tier_affinity", fail_at=((1, 120.0),))]
        serial = ScenarioRunner(max_workers=1).run_fleet(fleets)
        parallel = ScenarioRunner(max_workers=3).run_fleet(fleets)
        assert [r.name for r in parallel] == [f.name for f in fleets]
        assert [r.report for r in serial] == [r.report for r in parallel]

    def test_failure_redispatches_across_pool(self):
        results = ScenarioRunner(max_workers=2).run_fleet(
            [_fleet("round_robin", fail_at=((0, 60.0),))])
        report = results[0].report
        assert report.nodes[0].failed_at_s == 60.0
        assert report.nodes[0].report.horizon_s == 60.0

    def test_unknown_routing_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            ScenarioRunner(max_workers=1).run_fleet(
                [_fleet(routing="nope")])

    def test_empty_run(self):
        assert ScenarioRunner().run_fleet([]) == []

    def test_fleet_sweep_cells_share_traces(self):
        specs = fleet_sweep_scenarios(
            routings=("round_robin", "least_loaded"), traces_per_cell=2,
            pool=SMALL_POOL, search_iterations=6)
        by_trace = {}
        for s in specs:
            by_trace.setdefault(s.name.split("_")[0], set()).add(s.seed)
        assert all(len(seeds) == 1 for seeds in by_trace.values())
        # Default platform pair makes any >=2-node fleet heterogeneous.
        assert len({n.platform for n in specs[0].nodes}) == 2

    def test_summarise_fleet_groups_by_routing(self):
        specs = fleet_sweep_scenarios(
            routings=("round_robin", "least_loaded"), traces_per_cell=1,
            num_nodes=2, manager="baseline", policy="full",
            horizon_s=240.0, arrival_rate_per_s=1 / 20,
            pool=SMALL_POOL, capacity=2, search_iterations=6)
        rows = summarise_fleet(
            ScenarioRunner(max_workers=1).run_fleet(specs))
        assert [r["routing"] for r in rows] == ["least_loaded",
                                                "round_robin"]
        assert all(r["scenarios"] == 1 for r in rows)

    def test_experiment_context_fleet_serve_sweep(self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        results, summary = ctx.fleet_serve_sweep(
            routings=("round_robin",), num_nodes=2, manager="baseline",
            policy="full", traces_per_cell=1, horizon_s=240.0,
            arrival_rate_per_s=1 / 20, pool=SMALL_POOL, capacity=2,
            max_workers=1)
        assert len(results) == 1
        assert summary[0]["routing"] == "round_robin"
        assert results[0].report.admitted > 0


def _power_fleet(**kw):
    base = dict(name="powered", nodes=_fleet_nodes(), routing="least_joules",
                seed=0, horizon_s=240.0, arrival_rate_per_s=1 / 10,
                mean_session_s=90.0, power_cap_w=24.0)
    base.update(kw)
    return FleetScenario(**base)


class TestFleetPowerScenarios:
    def test_power_spec_validated(self):
        with pytest.raises(ValueError, match="power_cap_w"):
            _power_fleet(power_cap_w=0.0)
        with pytest.raises(ValueError, match="requires power_cap_w"):
            _power_fleet(power_cap_w=None,
                         power_cap_shift=(100.0, 10.0))
        with pytest.raises(ValueError, match="inside"):
            _power_fleet(power_cap_shift=(240.0, 10.0))
        with pytest.raises(ValueError, match="positive"):
            _power_fleet(power_cap_shift=(100.0, -1.0))
        with pytest.raises(ValueError, match="power_dvfs_levels"):
            _power_fleet(power_dvfs_levels=0)
        with pytest.raises(ValueError, match="power_dvfs_levels"):
            _power_fleet(power_dvfs_levels=9)

    def test_from_dict_converts_power_fields(self):
        spec = {
            "name": "p", "nodes": list(_fleet_nodes(2)),
            "routing": "least_joules", "power_cap_w": 20.0,
            "power_cap_shift": [100.0, 8.0],
            "power_shed_tiers": ["bronze", "silver"],
        }
        fleet = FleetScenario.from_dict(spec)
        assert fleet.power_cap_shift == (100.0, 8.0)
        assert fleet.power_shed_tiers == ("bronze", "silver")
        assert fleet == pickle.loads(pickle.dumps(fleet))

    def test_power_capped_run_carries_ledger(self):
        result = ScenarioRunner(max_workers=1).run_fleet(
            [_power_fleet(power_cap_shift=(120.0, 10.0))])[0]
        report = result.report
        assert report.power is not None
        assert report.power.cap_shift == (120.0, 10.0)
        assert report.power.fleet_energy_ws > 0.0
        assert all(n.energy_ws is not None for n in report.nodes)
        rows = summarise_fleet([result])
        assert rows[0]["mean_fleet_watts"] > 0.0
        assert "over_cap_ws" in rows[0] and "shed" in rows[0]

    def test_degenerate_power_matches_power_off_node_reports(self):
        """cap=inf + a single DVFS level must not perturb serving: the
        governor only accounts, so per-node reports match the power-off
        run bit for bit."""
        import math

        powered = ScenarioRunner(max_workers=1).run_fleet(
            [_power_fleet(routing="least_loaded", power_cap_w=math.inf,
                          power_dvfs_levels=1)])[0].report
        plain = ScenarioRunner(max_workers=1).run_fleet(
            [_power_fleet(routing="least_loaded",
                          power_cap_w=None)])[0].report
        assert [n.report for n in powered.nodes] \
            == [n.report for n in plain.nodes]
        assert powered.shed == 0
        assert powered.power.fleet_over_cap_ws == 0.0
        assert plain.power is None

    def test_power_parallel_equals_serial(self):
        fleets = [_power_fleet(power_cap_shift=(120.0, 10.0),
                               fail_at=((1, 150.0),))]
        serial = ScenarioRunner(max_workers=1).run_fleet(fleets)
        parallel = ScenarioRunner(max_workers=3).run_fleet(fleets)
        assert [r.report for r in serial] == [r.report for r in parallel]


class TestStrictScenarioDicts:
    """Satellite: scenario dicts must raise on unknown keys, not ignore."""

    def test_scenario_from_dict_roundtrip(self):
        spec = {"name": "s", "workload": ["alexnet", "mobilenet"],
                "priorities": [0.8, 0.2], "search_iterations": 6}
        s = Scenario.from_dict(spec)
        assert s.workload == ("alexnet", "mobilenet")
        assert s.priorities == (0.8, 0.2)

    def test_scenario_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unexpected Scenario field"):
            Scenario.from_dict({"name": "s", "workload": ["alexnet"],
                                "workloda": ["typo"]})

    def test_dynamic_unknown_key_raises(self):
        with pytest.raises(ValueError,
                           match="unexpected DynamicScenario field"):
            DynamicScenario.from_dict({"name": "d",
                                       "arival_rate_per_s": 0.1})

    def test_dynamic_from_dict_coerces_pool(self):
        d = DynamicScenario.from_dict({"name": "d",
                                       "pool": list(SMALL_POOL)})
        assert d.pool == SMALL_POOL

    def test_fleet_from_dict_parses_nested_nodes(self):
        fleet = FleetScenario.from_dict({
            "name": "f",
            "nodes": [{"name": "node0", "capacity": 2},
                      {"name": "node1", "platform": "jetson_class"}],
            "fail_at": [[0, 120.0]],
        })
        assert fleet.nodes[1].platform == "jetson_class"
        assert fleet.fail_at == ((0, 120.0),)

    def test_fleet_nested_unknown_key_raises(self):
        with pytest.raises(ValueError,
                           match="unexpected DynamicScenario field"):
            FleetScenario.from_dict({
                "name": "f", "nodes": [{"name": "n", "capaciti": 3}]})

    def test_non_dict_spec_rejected(self):
        with pytest.raises(TypeError, match="must be a dict"):
            Scenario.from_dict(["not", "a", "dict"])


_BACKEND_PARAMS = [
    "numpy",
    pytest.param("compiled", marks=pytest.mark.skipif(
        compiled_provider() is None,
        reason="no compiled provider available on this host")),
]


class TestBackendPlumbing:
    """Satellite: the solver-backend switch threads spec -> cache -> worker
    without aliasing backends together anywhere along the way."""

    def test_dynamic_from_dict_roundtrip_with_backend(self):
        d = DynamicScenario.from_dict({"name": "d", "backend": "compiled"})
        assert d.backend == "compiled"
        assert DynamicScenario.from_dict({"name": "d"}).backend == "numpy"

    def test_scenario_from_dict_roundtrip_with_backend(self):
        s = Scenario.from_dict({"name": "s", "workload": ["alexnet"],
                                "backend": "compiled"})
        assert s.backend == "compiled"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            DynamicScenario(name="x", backend="fortran", **DYNAMIC_FAST)
        with pytest.raises(ValueError, match="unknown solver backend"):
            Scenario.from_dict({"name": "s", "workload": ["alexnet"],
                                "backend": "fortran"})

    def test_fleet_spec_has_no_backend_field(self):
        """Backends belong to nodes (which solve fixed points), never the
        fleet spec — a fleet-level key must be rejected, not absorbed."""
        with pytest.raises(ValueError, match="unexpected FleetScenario"):
            FleetScenario.from_dict({
                "name": "f", "nodes": [{"name": "n0"}],
                "backend": "compiled"})
        fleet = FleetScenario.from_dict({
            "name": "f",
            "nodes": [{"name": "n0", "backend": "compiled"}]})
        assert fleet.nodes[0].backend == "compiled"

    def test_sweep_builders_apply_backend(self):
        dyn = dynamic_sweep_scenarios(policies=("full",),
                                      managers=("baseline",),
                                      traces_per_cell=1,
                                      backend="compiled")
        assert all(s.backend == "compiled" for s in dyn)
        fleets = fleet_sweep_scenarios(routings=("round_robin",),
                                       traces_per_cell=1, num_nodes=2,
                                       backend="compiled")
        assert all(n.backend == "compiled"
                   for f in fleets for n in f.nodes)

    def test_cache_isolates_backends(self, tmp_path):
        """A numpy-keyed entry must never answer a compiled request (and
        vice versa), in memory and through save/load."""
        from repro.hw import orange_pi_5
        from repro.mapping import uniform_block_mapping
        from repro.sim import EvaluationCache
        from repro.zoo import get_model

        platform = orange_pi_5()
        workload = [get_model("alexnet"), get_model("mobilenet")]
        mapping = uniform_block_mapping(workload, platform.num_components,
                                        np.random.default_rng(0))
        numpy_cache = EvaluationCache(platform, backend="numpy")
        numpy_cache.simulate_one(workload, mapping)
        assert numpy_cache.misses == 1

        path = tmp_path / "cache.pkl"
        numpy_cache.save(path)
        compiled_cache = EvaluationCache.load(path, platform,
                                              backend="compiled")
        assert compiled_cache.backend == "compiled"
        compiled_cache.simulate_one(workload, mapping)
        assert compiled_cache.misses == 1      # loaded entry stayed dormant
        compiled_cache.simulate_one(workload, mapping)
        assert compiled_cache.hits == 1        # its own entry does serve

        reloaded = EvaluationCache.load(path, platform, backend="numpy")
        reloaded.simulate_one(workload, mapping)
        assert reloaded.hits == 1 and reloaded.misses == 0

    @pytest.mark.parametrize("backend", _BACKEND_PARAMS)
    def test_parallel_equals_serial_per_backend(self, backend):
        """1-vs-2-worker reports stay bit-identical on either backend."""
        specs = dynamic_sweep_scenarios(
            policies=("full",), managers=("rankmap_d",),
            traces_per_cell=1, horizon_s=240.0,
            arrival_rate_per_s=1 / 30, pool=SMALL_POOL, capacity=2,
            search_iterations=6, backend=backend)
        serial = ScenarioRunner(max_workers=1).run_dynamic(specs)
        parallel = ScenarioRunner(max_workers=2).run_dynamic(specs)
        assert [r.report for r in serial] == [r.report for r in parallel]

    @pytest.mark.skipif(compiled_provider() is None,
                        reason="no compiled provider available")
    def test_reports_agree_across_backends(self):
        """End-to-end ServeReports on the two backends agree within the
        documented tolerance on a randomized trace."""
        results = {}
        for backend in ("numpy", "compiled"):
            spec = DynamicScenario(name="xb", manager="rankmap_d",
                                   policy="full", backend=backend,
                                   **DYNAMIC_FAST)
            results[backend] = execute_dynamic_scenario(spec).report
        a, b = results["numpy"], results["compiled"]
        assert (a.arrivals, a.admitted, a.rejected, a.replans) \
            == (b.arrivals, b.admitted, b.rejected, b.replans)
        assert a.sla_violation_fraction \
            == pytest.approx(b.sla_violation_fraction, rel=1e-9, abs=1e-12)
        assert a.mean_session_rate \
            == pytest.approx(b.mean_session_rate, rel=1e-9, abs=1e-12)
        assert a.total_decision_seconds \
            == pytest.approx(b.total_decision_seconds, rel=1e-9, abs=1e-12)

    @pytest.mark.skipif(compiled_provider() is None,
                        reason="no compiled provider available")
    def test_fleet_reports_agree_across_backends(self):
        """FleetReports with all nodes on the compiled backend agree with
        the all-numpy fleet within tolerance, 1-vs-2-worker each."""
        reports = {}
        for backend in ("numpy", "compiled"):
            specs = fleet_sweep_scenarios(
                routings=("round_robin",), traces_per_cell=1, num_nodes=2,
                manager="baseline", policy="full", horizon_s=240.0,
                arrival_rate_per_s=1 / 20, pool=SMALL_POOL, capacity=2,
                search_iterations=6, backend=backend)
            serial = ScenarioRunner(max_workers=1).run_fleet(specs)
            parallel = ScenarioRunner(max_workers=2).run_fleet(specs)
            assert [r.report for r in serial] \
                == [r.report for r in parallel]
            reports[backend] = serial[0].report
        a, b = reports["numpy"], reports["compiled"]
        assert (a.arrivals, a.admitted, a.rejected, a.lost) \
            == (b.arrivals, b.admitted, b.rejected, b.lost)
        assert a.mean_session_rate \
            == pytest.approx(b.mean_session_rate, rel=1e-9, abs=1e-12)


class TestMixScenariosAndSummarise:
    def test_managers_share_mixes(self):
        fleet = mix_scenarios(("baseline", "mosaic"), sizes=(3,),
                              mixes_per_size=2, **FAST)
        assert len(fleet) == 4
        by_mix = {}
        for s in fleet:
            by_mix.setdefault(s.name.rsplit("_", 1)[0], set()).add(s.workload)
        assert all(len(workloads) == 1 for workloads in by_mix.values())

    def test_summarise_groups_by_manager(self):
        def result(name, manager, rates):
            return ScenarioResult(
                name=name, manager=manager, platform="orange_pi_5",
                workload=("alexnet",), assignments=((0,),),
                decision_seconds=1.0, rates=rates,
                potentials=tuple(0.5 for _ in rates), wall_seconds=0.1)

        rows = summarise([
            result("a", "baseline", (2.0,)),
            result("b", "baseline", (4.0,)),
            result("c", "rankmap_d", (6.0,)),
        ])
        assert [r["manager"] for r in rows] == ["baseline", "rankmap_d"]
        assert rows[0]["scenarios"] == 2
        assert rows[0]["mean_throughput"] == pytest.approx(3.0)
        assert rows[1]["mean_throughput"] == pytest.approx(6.0)


PREEMPT_FAST = dict(horizon_s=240.0, arrival_rate_per_s=1 / 10,
                    mean_session_s=100.0, pool=SMALL_POOL, capacity=2,
                    queue_limit=6, search_iterations=6, search_rollouts=2)


class TestPreemptionScenarios:
    """Satellite: preemption wiring through specs, pool and from_dict."""

    def test_preemption_spec_validated(self):
        with pytest.raises(ValueError, match="unknown preemption policy"):
            DynamicScenario(name="x", preemption="nope")

    def test_parallel_equals_serial_with_preemption(self):
        """Determinism regression: 1-vs-N-worker bit-identical reports
        with eviction and renegotiation enabled."""
        specs = [DynamicScenario(name=f"p_{key}_{seed}", manager="baseline",
                                 policy="full", seed=seed, preemption=key,
                                 **PREEMPT_FAST)
                 for key in ("evict_lowest_tier", "renegotiate")
                 for seed in (0, 1)]
        serial = ScenarioRunner(max_workers=1).run_dynamic(specs)
        parallel = ScenarioRunner(max_workers=2).run_dynamic(specs)
        assert [r.report for r in serial] == [r.report for r in parallel]
        # The saturating trace actually exercises both mechanisms.
        assert sum(r.report.evictions for r in serial
                   if "evict" in r.name) > 0
        assert sum(r.report.demotions for r in serial
                   if "renegotiate" in r.name) > 0

    def test_sweep_passes_preemption_through(self):
        specs = dynamic_sweep_scenarios(policies=("full",),
                                        managers=("baseline",),
                                        traces_per_cell=1,
                                        preemption="evict_lowest_tier")
        assert all(s.preemption == "evict_lowest_tier" for s in specs)
        fleets = fleet_sweep_scenarios(routings=("round_robin",),
                                       traces_per_cell=1, num_nodes=2,
                                       preemption="renegotiate")
        assert all(n.preemption == "renegotiate"
                   for f in fleets for n in f.nodes)

    def test_summarise_dynamic_reports_preemption(self):
        specs = [DynamicScenario(name="d", manager="baseline", policy="full",
                                 preemption="evict_lowest_tier",
                                 **PREEMPT_FAST)]
        rows = summarise_dynamic(
            ScenarioRunner(max_workers=1).run_dynamic(specs))
        assert rows[0]["evictions"] > 0
        assert 0.0 < rows[0]["mean_eviction_fairness"] <= 1.0

    def test_dynamic_from_dict_preemption_roundtrip(self):
        import dataclasses

        spec = DynamicScenario(name="d", preemption="renegotiate",
                               **PREEMPT_FAST)
        assert DynamicScenario.from_dict(dataclasses.asdict(spec)) == spec

    def test_dynamic_from_dict_rejects_preemption_typo(self):
        with pytest.raises(ValueError,
                           match="unexpected DynamicScenario field"):
            DynamicScenario.from_dict({"name": "d",
                                       "preemptoin": "evict_lowest_tier"})

    def test_dynamic_from_dict_rejects_unknown_policy_value(self):
        with pytest.raises(ValueError, match="unknown preemption policy"):
            DynamicScenario.from_dict({"name": "d", "preemption": "nope"})

    def test_fleet_from_dict_nested_preemption_roundtrip(self):
        import dataclasses

        fleet = FleetScenario(
            name="f", routing="tier_affinity_preempt",
            nodes=tuple(DynamicScenario(name=f"n{i}",
                                        preemption="evict_lowest_tier",
                                        **PREEMPT_FAST) for i in range(2)),
            fail_at=((1, 120.0),))
        assert FleetScenario.from_dict(dataclasses.asdict(fleet)) == fleet


class TestEstimatorScenarios:
    """PR 5: the learned predictor through specs, pool and from_dict."""

    @pytest.fixture(scope="class")
    def artifact_path(self, tmp_path_factory):
        """A small trained-shape estimator artifact for the Orange Pi 5."""
        from repro.estimator import (
            EstimatorConfig,
            ThroughputEstimator,
            save_estimator_artifact,
        )
        from repro.hw import orange_pi_5
        from repro.vqvae import LayerVQVAE

        cfg = EstimatorConfig(max_dnns=4, max_layers=32, stem_channels=8,
                              block_channels=(8, 12, 16), attn_dim=8,
                              decoder_dim=12)
        path = tmp_path_factory.mktemp("artifact") / "estimator.pkl"
        save_estimator_artifact(
            path, ThroughputEstimator(np.random.default_rng(1), cfg),
            LayerVQVAE(np.random.default_rng(0)), orange_pi_5())
        return str(path)

    def test_predictor_spec_validated(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            DynamicScenario(name="x", predictor="psychic")
        with pytest.raises(ValueError, match="requires estimator_path"):
            DynamicScenario(name="x", predictor="estimator")

    def test_parallel_equals_serial_with_estimator(self, artifact_path):
        """Determinism regression: 1-vs-N-worker bit-identical reports on
        the learned path (workers rebuild the predictor from the
        artifact), and the predictor genuinely changes the study — lower
        modeled decision latency than the oracle on the same traces."""
        est = [DynamicScenario(name=f"e_{policy}", manager="rankmap_d",
                               policy=policy, predictor="estimator",
                               estimator_path=artifact_path, **DYNAMIC_FAST)
               for policy in ("full", "warm")]
        serial = ScenarioRunner(max_workers=1).run_dynamic(est)
        parallel = ScenarioRunner(max_workers=2).run_dynamic(est)
        assert [r.report for r in serial] == [r.report for r in parallel]

        oracle = ScenarioRunner(max_workers=1).run_dynamic(
            [DynamicScenario(name=f"o_{policy}", manager="rankmap_d",
                             policy=policy, **DYNAMIC_FAST)
             for policy in ("full", "warm")])
        for e, o in zip(serial, oracle):
            assert e.report.replans > 0
            assert e.report.total_decision_seconds \
                < o.report.total_decision_seconds

    def test_sweeps_pass_predictor_through(self, artifact_path):
        specs = dynamic_sweep_scenarios(
            policies=("full",), managers=("rankmap_d",), traces_per_cell=1,
            predictor="estimator", estimator_path=artifact_path)
        assert all(s.predictor == "estimator"
                   and s.estimator_path == artifact_path for s in specs)
        fleets = fleet_sweep_scenarios(
            routings=("round_robin",), traces_per_cell=1, num_nodes=2,
            predictor="estimator", estimator_path=artifact_path)
        assert all(n.predictor == "estimator"
                   and n.estimator_path == artifact_path
                   for f in fleets for n in f.nodes)

    def test_dynamic_from_dict_predictor_roundtrip(self, artifact_path):
        import dataclasses

        spec = DynamicScenario(name="d", manager="rankmap_d",
                               predictor="estimator",
                               estimator_path=artifact_path, **DYNAMIC_FAST)
        assert DynamicScenario.from_dict(dataclasses.asdict(spec)) == spec

    def test_dynamic_from_dict_rejects_predictor_typo(self):
        with pytest.raises(ValueError,
                           match="unexpected DynamicScenario field"):
            DynamicScenario.from_dict({"name": "d", "predictr": "oracle"})

    def test_dynamic_from_dict_rejects_unknown_predictor_value(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            DynamicScenario.from_dict({"name": "d", "predictor": "nope"})

    def test_experiment_context_trains_artifact_once(self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        path = ctx.estimator_artifact_path()
        assert path.exists()
        stamp = path.stat().st_mtime_ns
        assert ctx.estimator_artifact_path() == path
        assert path.stat().st_mtime_ns == stamp   # no retraining

    def test_experiment_context_estimator_serve_sweep(self, tmp_path):
        """Acceptance: a serve sweep on the learned path produces
        ServeReports whose per-decision latency sits far below the
        oracle's measurement-window pricing."""
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        results, summary = ctx.serve_sweep(
            policies=("warm",), managers=("rankmap_d",), traces_per_cell=1,
            horizon_s=180.0, pool=SMALL_POOL, max_workers=1,
            predictor="estimator")
        assert results[0].report.replans > 0
        # Warm replans price candidates at 0.04 s/eval; the oracle prices
        # the same rosters at 2 s/eval windows.
        assert 0.0 < summary[0]["mean_decision_seconds"] < 1.0

    def test_orphan_estimator_path_rejected(self, artifact_path):
        """estimator_path with the default oracle predictor would be
        silently ignored — a config slip that must fail loudly."""
        with pytest.raises(ValueError, match="silently ignored"):
            DynamicScenario(name="x", estimator_path=artifact_path,
                            **DYNAMIC_FAST)


class TestFleetFeedbackRuns:
    """PR: pressure-fed routing + drifted demand through the runner."""

    def _feedback_fleet(self, routing="pressure_feedback", rounds=2,
                        shift=None, fail_at=(), observe=False):
        import dataclasses

        nodes = tuple(dataclasses.replace(n, observe=observe)
                      for n in _fleet_nodes())
        return FleetScenario(
            name=f"fb_{routing}_{rounds}", nodes=nodes, routing=routing,
            seed=0, horizon_s=240.0, arrival_rate_per_s=1 / 8,
            mean_session_s=90.0, fail_at=fail_at, feedback_rounds=rounds,
            rate_shift=shift)

    def test_spec_validates_feedback_and_shift(self):
        with pytest.raises(ValueError, match="feedback_rounds"):
            FleetScenario(name="x", nodes=_fleet_nodes(),
                          feedback_rounds=-1)
        with pytest.raises(ValueError, match="feedback_rounds"):
            FleetScenario(name="x", nodes=_fleet_nodes(),
                          feedback_rounds=1.5)
        with pytest.raises(ValueError, match="rate_shift"):
            FleetScenario(name="x", nodes=_fleet_nodes(),
                          rate_shift=(100.0,))
        with pytest.raises(ValueError, match="rate_shift"):
            FleetScenario(name="x", nodes=_fleet_nodes(),
                          rate_shift=(0.0, 2.0))
        with pytest.raises(ValueError, match="rate_shift"):
            FleetScenario(name="x", nodes=_fleet_nodes(), horizon_s=240.0,
                          rate_shift=(240.0, 2.0))
        with pytest.raises(ValueError, match="rate_shift"):
            FleetScenario(name="x", nodes=_fleet_nodes(),
                          rate_shift=(100.0, 0.0))

    def test_rate_shift_drifts_the_trace(self):
        from repro.runner import sample_fleet_requests

        flat = self._feedback_fleet(rounds=0)
        drifted = self._feedback_fleet(rounds=0, shift=(120.0, 4.0))
        flat_tail = sum(1 for r in sample_fleet_requests(flat)
                        if r.arrival_s >= 120.0)
        drifted_tail = sum(1 for r in sample_fleet_requests(drifted)
                           if r.arrival_s >= 120.0)
        assert drifted_tail > 2 * flat_tail

    def test_rate_shift_requests_well_formed(self):
        from repro.runner import sample_fleet_requests

        requests = sample_fleet_requests(
            self._feedback_fleet(rounds=0, shift=(120.0, 3.0)))
        assert [r.session_id for r in requests] == list(range(len(requests)))
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= a < 240.0 for a in arrivals)
        assert all(r.duration_s > 0 for r in requests)

    def test_rate_shift_sampling_is_deterministic(self):
        from repro.runner import sample_fleet_requests

        fleet = self._feedback_fleet(rounds=0, shift=(120.0, 2.0))
        assert sample_fleet_requests(fleet) == sample_fleet_requests(fleet)

    def test_parallel_equals_serial_with_feedback(self):
        """Acceptance: iterative pressure-fed dispatch — including the
        node-failure re-dispatch path and a drifted trace — stays
        bit-identical for 1 vs N workers, telemetry included."""
        fleets = [self._feedback_fleet(rounds=2, shift=(120.0, 2.0),
                                       fail_at=((1, 100.0),), observe=True),
                  self._feedback_fleet(rounds=0, observe=True)]
        serial = ScenarioRunner(max_workers=1).run_fleet(fleets)
        parallel = ScenarioRunner(max_workers=3).run_fleet(fleets)
        assert [r.report for r in serial] == [r.report for r in parallel]
        assert [r.telemetry for r in serial] \
            == [r.telemetry for r in parallel]
        assert serial[0].report.re_dispatched > 0

    def test_round_zero_reproduces_least_loaded_dispatch(self):
        """feedback_rounds=0 keeps the pressure router byte-for-byte on
        today's least_loaded dispatch (only the routing label differs)."""
        fed = ScenarioRunner(max_workers=1).run_fleet(
            [self._feedback_fleet(rounds=0)])[0]
        plain = ScenarioRunner(max_workers=1).run_fleet(
            [self._feedback_fleet(routing="least_loaded", rounds=0)])[0]
        assert [n.report for n in fed.report.nodes] \
            == [n.report for n in plain.report.nodes]

    def test_fleet_from_dict_roundtrip_with_new_keys(self):
        import dataclasses

        fleet = self._feedback_fleet(rounds=3, shift=(100.0, 2.5))
        assert FleetScenario.from_dict(dataclasses.asdict(fleet)) == fleet

    def test_fleet_sweep_scenarios_passthrough(self):
        specs = fleet_sweep_scenarios(
            routings=("pressure_feedback",), traces_per_cell=1,
            num_nodes=2, pool=SMALL_POOL, search_iterations=6,
            observe=True, feedback_rounds=2, rate_shift=(300.0, 2.0))
        assert all(s.feedback_rounds == 2 for s in specs)
        assert all(s.rate_shift == (300.0, 2.0) for s in specs)
        assert all(node.observe for s in specs for node in s.nodes)
