"""Tests for the fleet-scale scenario runner (specs, pool, determinism)."""

import numpy as np
import pytest

from repro.runner import (
    MANAGER_SPECS,
    PLATFORM_SPECS,
    DynamicScenario,
    Scenario,
    ScenarioResult,
    ScenarioRunner,
    dynamic_sweep_scenarios,
    execute_dynamic_scenario,
    execute_scenario,
    mix_scenarios,
    summarise,
    summarise_dynamic,
)

FAST = dict(search_iterations=6, search_rollouts=2)

SMALL_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")

DYNAMIC_FAST = dict(horizon_s=240.0, arrival_rate_per_s=1 / 30,
                    mean_session_s=100.0, pool=SMALL_POOL, capacity=2,
                    search_iterations=6, search_rollouts=2)


class TestScenarioSpec:
    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="x", workload=())

    def test_priority_length_validated(self):
        with pytest.raises(ValueError):
            Scenario(name="x", workload=("alexnet", "mobilenet"),
                     priorities=(1.0,))

    def test_specs_are_picklable(self):
        import pickle

        s = Scenario(name="x", workload=("alexnet",), **FAST)
        assert pickle.loads(pickle.dumps(s)) == s


class TestExecuteScenario:
    def test_baseline_scenario(self):
        s = Scenario(name="b", workload=("alexnet", "mobilenet"),
                     manager="baseline", **FAST)
        r = execute_scenario(s)
        assert r.manager == "baseline"
        assert r.mapping.num_dnns == 2
        assert len(r.rates) == 2 and min(r.rates) > 0
        assert r.average_throughput == pytest.approx(np.mean(r.rates))
        assert r.min_potential == pytest.approx(min(r.potentials))

    def test_static_rankmap_uses_priorities(self):
        s = Scenario(name="s", workload=("alexnet", "mobilenet"),
                     manager="rankmap_s", priorities=(0.8, 0.2), **FAST)
        r = execute_scenario(s)
        assert r.decision_seconds > 0

    def test_search_manager_reports_cache_use(self):
        s = Scenario(name="d", workload=("alexnet", "mobilenet"),
                     manager="rankmap_d", **FAST)
        r = execute_scenario(s)
        assert 0.0 <= r.cache_hit_rate <= 1.0

    def test_unknown_manager_rejected(self):
        with pytest.raises(ValueError, match="unknown manager"):
            execute_scenario(Scenario(name="x", workload=("alexnet",),
                                      manager="nope", **FAST))

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError, match="unknown platform"):
            execute_scenario(Scenario(name="x", workload=("alexnet",),
                                      platform="nope", **FAST))

    def test_rosters_exposed(self):
        assert "rankmap_d" in MANAGER_SPECS
        assert "orange_pi_5" in PLATFORM_SPECS


class TestScenarioRunner:
    def _fleet(self):
        return mix_scenarios(("baseline", "rankmap_d"), sizes=(2,),
                             mixes_per_size=2, **FAST)

    def test_parallel_equals_serial(self):
        """Pool size must not affect any result bit."""
        fleet = self._fleet()
        serial = ScenarioRunner(max_workers=1).run(fleet)
        parallel = ScenarioRunner(max_workers=2).run(fleet)
        assert [(r.name, r.assignments, r.rates) for r in serial] \
            == [(r.name, r.assignments, r.rates) for r in parallel]

    def test_results_in_input_order(self):
        fleet = self._fleet()
        results = ScenarioRunner(max_workers=2).run(fleet)
        assert [r.name for r in results] == [s.name for s in fleet]

    def test_empty_run(self):
        assert ScenarioRunner().run([]) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ScenarioRunner(max_workers=0)


class TestExperimentContextFleetSweep:
    def test_fleet_sweep_uses_preset_and_aggregates(self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        results, summary = ctx.fleet_sweep(
            managers=("baseline",), sizes=(2,), mixes_per_size=1,
            max_workers=1)
        assert len(results) == 1
        assert summary[0]["manager"] == "baseline"
        assert summary[0]["scenarios"] == 1
        # Scenario search budget comes from the preset.
        scenario_like = results[0]
        assert scenario_like.platform == "orange_pi_5"

    def test_fleet_sweep_follows_context_platform(self, tmp_path):
        from repro.experiments import ExperimentContext
        from repro.hw import jetson_class

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                platform=jetson_class(),
                                use_artifact_cache=False)
        results, _ = ctx.fleet_sweep(managers=("baseline",), sizes=(2,),
                                     mixes_per_size=1, max_workers=1)
        assert results[0].platform == "jetson_class"

    def test_fleet_sweep_rejects_non_preset_platform(self, tmp_path):
        import dataclasses

        from repro.experiments import ExperimentContext
        from repro.hw import orange_pi_5

        custom = dataclasses.replace(orange_pi_5(), name="bespoke_board")
        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                platform=custom, use_artifact_cache=False)
        with pytest.raises(ValueError, match="not a runner preset"):
            ctx.fleet_sweep(managers=("baseline",), sizes=(2,),
                            mixes_per_size=1, max_workers=1)


class TestDynamicScenario:
    def test_spec_validated(self):
        with pytest.raises(ValueError):
            DynamicScenario(name="x", horizon_s=0.0)
        with pytest.raises(ValueError):
            DynamicScenario(name="x", arrival_rate_per_s=0.0)
        with pytest.raises(ValueError):
            DynamicScenario(name="x", capacity=0)

    def test_specs_are_picklable(self):
        import pickle

        s = DynamicScenario(name="d", **DYNAMIC_FAST)
        assert pickle.loads(pickle.dumps(s)) == s

    def test_execute_produces_report(self):
        s = DynamicScenario(name="d", manager="rankmap_d", policy="warm",
                            **DYNAMIC_FAST)
        r = execute_dynamic_scenario(s)
        assert r.policy == "warm"
        assert r.report.arrivals > 0
        assert r.report.replans > 0
        assert r.wall_seconds > 0
        assert 0.0 <= r.eval_cache_hit_rate <= 1.0

    def test_unknown_platform_rejected(self):
        with pytest.raises(ValueError, match="unknown platform"):
            execute_dynamic_scenario(
                DynamicScenario(name="x", platform="nope", **DYNAMIC_FAST))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown replan policy"):
            execute_dynamic_scenario(
                DynamicScenario(name="x", policy="nope", **DYNAMIC_FAST))

    def test_parallel_equals_serial(self):
        """Satellite regression: the same DynamicScenario through 1 worker
        and N workers yields identical ServeReports."""
        specs = dynamic_sweep_scenarios(
            policies=("full", "warm"), managers=("rankmap_d",),
            traces_per_cell=1, horizon_s=240.0,
            arrival_rate_per_s=1 / 30, pool=SMALL_POOL, capacity=2,
            search_iterations=6)
        serial = ScenarioRunner(max_workers=1).run_dynamic(specs)
        parallel = ScenarioRunner(max_workers=2).run_dynamic(specs)
        assert [r.name for r in parallel] == [s.name for s in specs]
        assert [r.report for r in serial] == [r.report for r in parallel]

    def test_workers_load_persisted_cache(self, tmp_path):
        """Acceptance: a cache persisted by one run warms fresh worker
        processes, which report hit_rate > 0 on their first plans."""
        from repro.hw import orange_pi_5
        from repro.sim import EvaluationCache

        path = tmp_path / "cache.pkl"
        cold = DynamicScenario(name="warmup", manager="rankmap_d",
                               **DYNAMIC_FAST)
        platform = orange_pi_5()
        cache = EvaluationCache(platform)
        # Warm the cache inline with the identical spec, then persist it.
        from repro.runner.runner import build_manager
        from repro.serve import build_replan_policy, serve_trace, ServeConfig, AdmissionConfig
        from repro.workloads import TraceConfig, sample_session_requests

        manager = build_manager(cold, platform, cache)
        requests = sample_session_requests(
            np.random.default_rng(cold.seed + 17),
            TraceConfig(horizon_s=cold.horizon_s,
                        arrival_rate_per_s=cold.arrival_rate_per_s,
                        mean_session_s=cold.mean_session_s,
                        max_concurrent=cold.capacity, pool=SMALL_POOL))
        serve_trace(requests, build_replan_policy("full", manager), platform,
                    ServeConfig(horizon_s=cold.horizon_s,
                                admission=AdmissionConfig(capacity=2),
                                pool=SMALL_POOL, seed=cold.seed),
                    cache=cache)
        cache.save(path)

        warmed = [DynamicScenario(name=f"w{i}", manager="rankmap_d",
                                  cache_path=str(path), **DYNAMIC_FAST)
                  for i in range(2)]
        results = ScenarioRunner(max_workers=2).run_dynamic(warmed)
        for r in results:
            assert r.eval_cache_preloaded > 0
            assert r.eval_cache_hit_rate > 0

    def test_summarise_dynamic_groups_by_policy(self):
        # "warm" needs a RankMap manager, so the cheap baseline cells use
        # the full and plan-cache policies.
        specs = dynamic_sweep_scenarios(
            policies=("full", "cache"), managers=("baseline",),
            traces_per_cell=2, horizon_s=240.0,
            arrival_rate_per_s=1 / 40, pool=SMALL_POOL, capacity=2,
            search_iterations=6)
        rows = summarise_dynamic(
            ScenarioRunner(max_workers=1).run_dynamic(specs))
        assert [(r["manager"], r["policy"]) for r in rows] == \
            [("baseline", "cache"), ("baseline", "full")]
        assert all(r["scenarios"] == 2 for r in rows)

    def test_cells_share_traces(self):
        specs = dynamic_sweep_scenarios(policies=("full", "warm"),
                                        traces_per_cell=2)
        by_trace = {}
        for s in specs:
            by_trace.setdefault(s.name.split("_")[0], set()).add(s.seed)
        assert all(len(seeds) == 1 for seeds in by_trace.values())

    def test_experiment_context_serve_sweep(self, tmp_path):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(preset="tiny", results_dir=tmp_path,
                                use_artifact_cache=False)
        results, summary = ctx.serve_sweep(
            policies=("full",), managers=("baseline",), traces_per_cell=1,
            horizon_s=240.0, pool=SMALL_POOL, max_workers=1)
        assert len(results) == 1
        assert summary[0]["policy"] == "full"
        assert results[0].report.arrivals > 0


class TestMixScenariosAndSummarise:
    def test_managers_share_mixes(self):
        fleet = mix_scenarios(("baseline", "mosaic"), sizes=(3,),
                              mixes_per_size=2, **FAST)
        assert len(fleet) == 4
        by_mix = {}
        for s in fleet:
            by_mix.setdefault(s.name.rsplit("_", 1)[0], set()).add(s.workload)
        assert all(len(workloads) == 1 for workloads in by_mix.values())

    def test_summarise_groups_by_manager(self):
        def result(name, manager, rates):
            return ScenarioResult(
                name=name, manager=manager, platform="orange_pi_5",
                workload=("alexnet",), assignments=((0,),),
                decision_seconds=1.0, rates=rates,
                potentials=tuple(0.5 for _ in rates), wall_seconds=0.1)

        rows = summarise([
            result("a", "baseline", (2.0,)),
            result("b", "baseline", (4.0,)),
            result("c", "rankmap_d", (6.0,)),
        ])
        assert [r["manager"] for r in rows] == ["baseline", "rankmap_d"]
        assert rows[0]["scenarios"] == 2
        assert rows[0]["mean_throughput"] == pytest.approx(3.0)
        assert rows[1]["mean_throughput"] == pytest.approx(6.0)
