#!/usr/bin/env python
"""Measure the micro-benchmarks and distill them into ``BENCH_micro.json``.

Runs ``benchmarks/test_bench_micro.py`` with benchmarking *enabled*
(overriding the repo's smoke-mode default), then reduces pytest-benchmark's
verbose JSON into one stable record per benchmark::

    {"meta": {...}, "benchmarks": {"<name>": {"mean_s": ..., "stddev_s":
     ..., "ops_per_s": ..., "rounds": ...}}}

Commit the emitted file (or archive it per run) and the repo accumulates a
machine-readable perf trajectory; the batch-size sweep rows
(``test_bench_simulator_solve_batch[...]`` vs
``test_bench_simulator_solve_scalar16``) are the ones that demonstrate the
batched-solver speedup.

Usage:
    PYTHONPATH=src python benchmarks/emit_bench_json.py [output.json]
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_benchmarks(raw_json: Path) -> None:
    cmd = [
        sys.executable, "-m", "pytest",
        str(REPO_ROOT / "benchmarks" / "test_bench_micro.py"),
        "--benchmark-enable",
        "--benchmark-only",
        f"--benchmark-json={raw_json}",
        "-q",
    ]
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (":" + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    subprocess.run(cmd, check=True, cwd=REPO_ROOT, env=env)


def distill(raw_json: Path, out_path: Path) -> dict:
    raw = json.loads(raw_json.read_text())
    benchmarks = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        benchmarks[bench["name"]] = {
            "mean_s": stats["mean"],
            "stddev_s": stats["stddev"],
            "ops_per_s": stats["ops"],
            "rounds": stats["rounds"],
        }
    record = {
        "meta": {
            "datetime": raw.get("datetime"),
            "python": platform.python_version(),
            "machine": raw.get("machine_info", {}).get("machine"),
            "suite": "benchmarks/test_bench_micro.py",
        },
        "benchmarks": benchmarks,
    }
    out_path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record


def main() -> None:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else REPO_ROOT / "BENCH_micro.json"
    with tempfile.TemporaryDirectory() as tmp:
        raw_json = Path(tmp) / "bench_raw.json"
        run_benchmarks(raw_json)
        record = distill(raw_json, out_path)
    names = sorted(record["benchmarks"])
    print(f"\nWrote {out_path} ({len(names)} benchmarks)")
    batch16 = record["benchmarks"].get("test_bench_simulator_solve_batch[16]")
    scalar16 = record["benchmarks"].get("test_bench_simulator_solve_scalar16")
    if batch16 and scalar16:
        speedup = scalar16["mean_s"] / batch16["mean_s"]
        print(f"batch-of-16 vs 16 scalar simulate calls: {speedup:.2f}x")


if __name__ == "__main__":
    main()
