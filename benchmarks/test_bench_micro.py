"""Micro-benchmarks of the performance-critical kernels.

These are the hot paths of the reproduction: the steady-state contention
solver (called for every evaluated mapping), Q-tensor assembly, estimator
forward pass, VQ-VAE encoding, and one MCTS planning step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.estimator import EstimatorConfig, ThroughputEstimator
from repro.hw import orange_pi_5
from repro.mapping import (
    build_q_tensor,
    random_partition_mapping,
    uniform_block_mapping,
)
from repro.search import MCTSConfig
from repro.sim import (
    EvaluationCache,
    compiled_provider,
    simulate,
    simulate_batch,
)
from repro.vqvae import EmbeddingCache, LayerVQVAE
from repro.zoo import get_model

PLATFORM = orange_pi_5()
WORKLOAD = [get_model(n)
            for n in ("squeezenet_v2", "inception_v4", "resnet50", "vgg16")]


@pytest.fixture(scope="module")
def mappings():
    rng = np.random.default_rng(0)
    return [random_partition_mapping(WORKLOAD, 3, rng) for _ in range(16)]


@pytest.fixture(scope="module")
def rollout_mappings():
    """Fragmented per-block assignments — the distribution MCTS rollouts
    actually feed the evaluator, and the batch path's target workload."""
    rng = np.random.default_rng(0)
    return [uniform_block_mapping(WORKLOAD, 3, rng) for _ in range(16)]


def test_bench_simulator_solve(benchmark, mappings):
    simulate(WORKLOAD, mappings[0], PLATFORM)  # warm latency caches
    it = iter(range(10**9))

    def step():
        return simulate(WORKLOAD, mappings[next(it) % len(mappings)], PLATFORM)

    benchmark(step)


_NEEDS_COMPILED = pytest.mark.skipif(
    compiled_provider() is None,
    reason="no compiled solver provider (numba or C compiler) on this host")

#: ids keep the pre-existing history row names ("1"/"4"/"16") for the
#: numpy sweep and add side-by-side "compiled-*" rows for the jit/C path.
_SOLVE_BATCH_PARAMS = [
    pytest.param("numpy", 1, id="1"),
    pytest.param("numpy", 4, id="4"),
    pytest.param("numpy", 16, id="16"),
    pytest.param("compiled", 1, id="compiled-1", marks=_NEEDS_COMPILED),
    pytest.param("compiled", 4, id="compiled-4", marks=_NEEDS_COMPILED),
    pytest.param("compiled", 16, id="compiled-16", marks=_NEEDS_COMPILED),
]


@pytest.mark.parametrize("backend, batch", _SOLVE_BATCH_PARAMS)
def test_bench_simulator_solve_batch(benchmark, rollout_mappings, backend,
                                     batch):
    """Batch-size sweep of the fixed-point solver, per backend.

    Acceptance for the compiled backend: the ``compiled-16`` row beats
    the numpy ``16`` row by >= 5x (both rows land in
    ``BENCH_history.jsonl`` and are guarded by ``record_bench.py``).
    """
    simulate(WORKLOAD, rollout_mappings[0], PLATFORM)  # warm latency caches
    subset = rollout_mappings[:batch]
    # Warm the backend too: first compiled call pays jit / .so build cost.
    simulate_batch(WORKLOAD, subset, PLATFORM, backend=backend)
    result = benchmark(lambda: simulate_batch(WORKLOAD, subset, PLATFORM,
                                              backend=backend))
    assert len(result) == batch


def test_bench_simulator_solve_scalar16(benchmark, rollout_mappings):
    """Scalar comparison row for the batch-of-16 sweep: the same 16
    mappings through 16 ``simulate`` calls (acceptance: batch >= 3x)."""
    simulate(WORKLOAD, rollout_mappings[0], PLATFORM)

    def step():
        return [simulate(WORKLOAD, m, PLATFORM) for m in rollout_mappings]

    benchmark(step)


def test_bench_cached_reevaluation(benchmark, rollout_mappings):
    """Re-scoring a batch the cache has already solved (relaxation-retry
    and repeated-plan hot path)."""
    cache = EvaluationCache(PLATFORM)
    cache.simulate(WORKLOAD, rollout_mappings)  # prime

    benchmark(lambda: cache.simulate(WORKLOAD, rollout_mappings))
    assert cache.hits >= len(rollout_mappings)
    assert cache.misses == len(rollout_mappings)


def test_bench_q_tensor_assembly(benchmark, mappings):
    vqvae = LayerVQVAE(np.random.default_rng(0))
    embedder = EmbeddingCache(vqvae)
    embeddings = embedder.for_workload(WORKLOAD)

    benchmark(lambda: build_q_tensor(WORKLOAD, mappings[0], embeddings,
                                     3, 5, 96))


def test_bench_estimator_forward(benchmark):
    model = ThroughputEstimator(np.random.default_rng(0), EstimatorConfig())
    q = np.random.default_rng(1).normal(
        size=(8, 5, 96, 48)).astype(np.float32)
    benchmark(lambda: model.predict_log_rates(q))


@pytest.mark.parametrize("mode", ["scalar", "batch"])
def test_bench_estimator_predict(benchmark, mode, rollout_mappings):
    """Learned-path candidate scoring: looped single-mapping ``predict``
    calls vs one fused ``predict_batch`` over the same 16-candidate
    roster (full-size estimator, the serving stack's hot path when
    ``DynamicScenario.predictor == "estimator"``).

    The scalar row pays 16 Q assemblies and 16 batch-1 forward passes;
    the batch row pays one fused assembly
    (``build_q_tensor_batch``) and a single batch-16 forward.
    Acceptance: the batch row is measurably faster on batch >= 8 — the
    two rows land side by side in ``BENCH_history.jsonl`` for that
    comparison, and ``record_bench.py``'s guard flags either row
    slowing >25% against its own previous entry.
    """
    from repro.core import EstimatorPredictor

    model = ThroughputEstimator(np.random.default_rng(0), EstimatorConfig())
    embedder = EmbeddingCache(LayerVQVAE(np.random.default_rng(0)))
    predictor = EstimatorPredictor(model, embedder)
    predictor.predict_batch(WORKLOAD, rollout_mappings[:1])  # warm embeddings

    if mode == "scalar":
        def step():
            return np.concatenate(
                [predictor.predict(WORKLOAD, [m]) for m in rollout_mappings])
    else:
        def step():
            return predictor.predict_batch(WORKLOAD, rollout_mappings)

    rates = benchmark(step)
    assert rates.shape == (len(rollout_mappings), len(WORKLOAD))
    assert (rates >= 0).all()


def test_bench_vqvae_embed(benchmark):
    vqvae = LayerVQVAE(np.random.default_rng(0))
    model = get_model("resnet50")
    benchmark(lambda: vqvae.embed_model(model))


def test_bench_rankmap_plan_oracle(benchmark):
    manager = RankMap(
        PLATFORM, OraclePredictor(PLATFORM),
        RankMapConfig(mode="dynamic",
                      mcts=MCTSConfig(iterations=15, rollouts_per_leaf=2)),
    )
    benchmark.pedantic(lambda: manager.plan(WORKLOAD), rounds=2, iterations=1)


def test_bench_block_latency_model(benchmark):
    from repro.hw.latency import model_latency

    model = get_model("inception_v4")
    comp = PLATFORM.components[0]
    benchmark(lambda: model_latency(model, comp))


def test_bench_des_run(benchmark, mappings):
    """One discrete-event execution of a 4-DNN mapping (10 s horizon)."""
    from repro.sim import DesConfig, simulate_des

    config = DesConfig(horizon_s=10.0, warmup_s=2.0)
    it = iter(range(10**9))

    def step():
        return simulate_des(WORKLOAD, mappings[next(it) % len(mappings)],
                            PLATFORM, config)

    benchmark(step)


def test_bench_energy_report(benchmark, mappings):
    """Full power/energy accounting of one mapping."""
    from repro.hw import energy_report, orange_pi_5_power

    power = orange_pi_5_power()
    it = iter(range(10**9))

    def step():
        return energy_report(WORKLOAD, mappings[next(it) % len(mappings)],
                             PLATFORM, power)

    benchmark(step)


def test_bench_poisson_trace(benchmark):
    """Sampling a 1-hour edge-data-center session trace."""
    from repro.workloads import TraceConfig, poisson_trace

    config = TraceConfig(horizon_s=3600.0, arrival_rate_per_s=1 / 30)
    it = iter(range(10**9))

    def step():
        return poisson_trace(np.random.default_rng(next(it)), config)

    benchmark(step)


@pytest.mark.parametrize("routing", ["round_robin", "least_loaded",
                                     "tier_affinity"])
def test_bench_fleet_dispatch(benchmark, routing):
    """Fleet dispatch planning: routing a 1-hour aggregate trace across a
    6-node heterogeneous fleet (with one mid-run failure to drain).

    This is the cluster layer's pure-dispatch hot path — no serving, no
    solver — so it bounds how fast ``ScenarioRunner.run_fleet`` can fan
    nodes out.  The three rows expose the per-policy routing overhead on
    identical demand.
    """
    from repro.serve.fleet import NodeSpec, plan_dispatch
    from repro.workloads import TraceConfig, sample_session_requests

    config = TraceConfig(horizon_s=3600.0, arrival_rate_per_s=1 / 4,
                         mean_session_s=90.0)
    requests = sample_session_requests(np.random.default_rng(0), config)
    nodes = [NodeSpec(name=f"n{i}", capacity=4, speed=1.0 + 0.5 * i,
                      fail_at_s=(1800.0 if i == 0 else None))
             for i in range(6)]

    plan = benchmark(lambda: plan_dispatch(requests, nodes, routing, 3600.0))
    assert sum(plan.routed) >= len(requests)


@pytest.mark.parametrize("preemption", ["none", "evict_lowest_tier",
                                        "renegotiate"])
def test_bench_serve_preempt(benchmark, preemption):
    """Serving-loop overhead of the preemption policies on one node.

    Serves a fixed saturating 600 s Poisson trace (arrival rate 1/10 s
    against capacity 2) end to end through each preemption policy, with
    the replan layer pinned to the trivial GPU-only manager and a shared
    pre-warmed evaluation cache — so the three rows isolate what the
    admission-side preemption machinery (victim selection, suspend /
    resume bookkeeping, extra replans) costs on top of the baseline
    accept/queue/reject loop.
    """
    from repro.baselines import GpuBaseline
    from repro.serve import AdmissionConfig, FullReplan, ServeConfig, serve_trace
    from repro.workloads import TraceConfig, sample_session_requests

    pool = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")
    # Silver-heavy demand: silver sits strictly between gold and the
    # ladder floor, so both eviction and renegotiation find victims.
    requests = sample_session_requests(
        np.random.default_rng(0),
        TraceConfig(horizon_s=600.0, arrival_rate_per_s=1 / 10,
                    mean_session_s=140.0, pool=pool),
        tiers=("gold", "silver", "silver"))
    config = ServeConfig(
        horizon_s=600.0,
        admission=AdmissionConfig(capacity=2, queue_limit=6,
                                  max_queue_wait_s=120.0,
                                  preemption=preemption),
        pool=pool, seed=0)
    cache = EvaluationCache(PLATFORM)
    policy = FullReplan(GpuBaseline())
    serve_trace(requests, policy, PLATFORM, config, cache=cache)  # warm

    report = benchmark(lambda: serve_trace(requests, policy, PLATFORM,
                                           config, cache=cache))
    assert report.arrivals == len(requests)
    if preemption == "evict_lowest_tier":
        assert report.evictions > 0
        # Acceptance: preemption strictly improves gold under saturation.
        baseline = serve_trace(
            requests, policy, PLATFORM,
            ServeConfig(horizon_s=600.0,
                        admission=AdmissionConfig(
                            capacity=2, queue_limit=6,
                            max_queue_wait_s=120.0, preemption="none"),
                        pool=pool, seed=0),
            cache=cache)
        assert report.tier_violation_fraction("gold") \
            < baseline.tier_violation_fraction("gold")
    elif preemption == "renegotiate":
        assert report.demotions > 0


@pytest.mark.parametrize("policy_key, backend", [
    pytest.param("full", "numpy", id="full"),
    pytest.param("warm", "numpy", id="warm"),
    pytest.param("cache", "numpy", id="cache"),
    pytest.param("full", "compiled", id="full-compiled",
                 marks=_NEEDS_COMPILED),
])
def test_bench_serve_replan(benchmark, policy_key, backend):
    """Serve-path replan decision: full search vs warm start vs plan-cache.

    Measures one replan after an arrival extends a 3-DNN incumbent to 4
    DNNs — the serving loop's hot path.  All three policies share the
    evaluation-cache substrate, so the spread is pure policy overhead:
    the full tree search, the handful of warm-start candidate
    evaluations, or the O(1) plan-cache lookup.  The modeled on-board
    decision latency must shrink in the same order (asserted below),
    which is what turns into re-mapping gap time online.  The
    ``full-compiled`` row repeats the full search with the compiled
    contention solver under the cache: first-touch solves go through the
    compiled backend, steady-state rounds share the warmed cache, so the
    row pins that swapping the solver substrate costs the replan loop
    nothing.
    """
    from repro.serve import build_replan_policy

    cache = EvaluationCache(PLATFORM, backend=backend)
    manager = RankMap(
        PLATFORM, OraclePredictor(PLATFORM, cache=cache),
        RankMapConfig(mode="dynamic",
                      mcts=MCTSConfig(iterations=20, rollouts_per_leaf=2)),
    )
    policy = build_replan_policy(policy_key, manager)
    resident = [get_model(n) for n in ("squeezenet_v2", "resnet50", "vgg16")]
    workload = resident + [get_model("mobilenet")]

    first = policy.replan(resident, None, None)          # build the incumbent
    incumbent = (tuple(m.name for m in resident), first.mapping)
    policy.replan(workload, None, incumbent)             # prime plan cache

    outcome = benchmark(lambda: policy.replan(workload, None, incumbent))

    full_modeled = (manager.config.mcts.total_evaluations
                    * manager.predictor.board_latency_per_eval)
    if policy_key == "full":
        assert outcome.kind == "full"
        assert outcome.decision_seconds == pytest.approx(full_modeled)
    elif policy_key == "warm":
        assert outcome.kind == "warm"
        assert outcome.decision_seconds < 0.25 * full_modeled
    else:
        assert outcome.kind == "cache_hit"
        assert outcome.decision_seconds == 0.0


_SCALE_WALL: dict[int, float] = {}  # n -> (wall seconds, arrivals)


@pytest.mark.parametrize("n", [1_000, 100_000, 1_000_000],
                         ids=["1e3", "1e5", "1e6"])
def test_bench_serve_scale(benchmark, n):
    """Streaming serving loop at trace scale: ~n sessions end to end.

    Feeds an ``iter_session_requests`` generator straight into
    ``serve_trace`` — the trace is never materialised — over a horizon
    sized so the expected arrival count is ``n`` (rate 1/4 s against
    capacity 4, preemption on, ``record_timeline=False`` so the output
    ledger is the only O(arrivals) term).  The three rows pin the
    near-linear scaling of the keyed waiting room + scheduled-timeout
    event core: per-arrival cost must stay flat from 1e3 to 1e5 (asserted
    below), with 1e6 as the headline row.  The 1e6 row runs only under
    ``make bench`` — at ~1 min it is too heavy for tier-1 smoke mode.
    """
    import time

    from repro.baselines import GpuBaseline
    from repro.serve import AdmissionConfig, FullReplan, ServeConfig, serve_trace
    from repro.workloads import TraceConfig, iter_session_requests

    if n >= 1_000_000 and not benchmark.enabled:
        pytest.skip("1e6 row is bench-only; smoke mode covers 1e3/1e5")

    pool = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")
    horizon = n * 4.0
    trace = TraceConfig(horizon_s=horizon, arrival_rate_per_s=1 / 4,
                        mean_session_s=90.0, pool=pool)
    config = ServeConfig(
        horizon_s=horizon,
        admission=AdmissionConfig(capacity=4, queue_limit=8,
                                  max_queue_wait_s=120.0,
                                  preemption="evict_lowest_tier"),
        pool=pool, seed=0, record_timeline=False)
    cache = EvaluationCache(PLATFORM)
    policy = FullReplan(GpuBaseline())
    # Warm the solver cache so the rows time the event core, not the
    # first-touch contention solves.
    serve_trace(iter_session_requests(np.random.default_rng(7),
                                      TraceConfig(horizon_s=400.0,
                                                  arrival_rate_per_s=1 / 4,
                                                  mean_session_s=90.0,
                                                  pool=pool),
                                      tier_shift_prob=0.2),
                policy, PLATFORM,
                ServeConfig(horizon_s=400.0, admission=config.admission,
                            pool=pool, seed=0, record_timeline=False),
                cache=cache)

    def run():
        stream = iter_session_requests(np.random.default_rng(7), trace,
                                       tier_shift_prob=0.2)
        t0 = time.perf_counter()
        report = serve_trace(stream, policy, PLATFORM, config, cache=cache)
        _SCALE_WALL[n] = (time.perf_counter() - t0, report.arrivals)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.timeline.segments == []
    assert 0.9 * n <= report.arrivals <= 1.1 * n
    assert report.admitted > 0 and report.abandoned > 0
    if n == 100_000 and 1_000 in _SCALE_WALL:
        # Near-linearity acceptance: per-arrival cost at 1e5 within 8x
        # of the 1e3 row (generous bound — measured ~1.1-1.5x — so CI
        # noise cannot flake it while super-linear regressions still
        # fail fast).
        small_wall, small_n = _SCALE_WALL[1_000]
        big_wall, big_n = _SCALE_WALL[100_000]
        assert big_wall / big_n <= 8.0 * (small_wall / small_n), \
            "serving loop no longer scales near-linearly in trace length"


_OBS_WALL: dict[str, float] = {}   # mode -> wall seconds
_OBS_REPORTS: dict[str, object] = {}


@pytest.mark.parametrize("mode", ["off", "on"])
def test_bench_serve_obs(benchmark, mode):
    """Telemetry-recorder overhead on the streaming serving loop.

    Serves the same ~1e3-session scale trace (rate 1/4, capacity 4,
    preemption on, ``record_timeline=False``) with the recorder off and
    with a :class:`repro.obs.TelemetryRecorder` attached, and pins both
    contracts of the subsystem: the reports are **bit-identical** (the
    recorder is a pure side channel) and the on-path wall clock stays
    within 10% of the off-path (plus a 20 ms absolute floor so a
    sub-second off row cannot flake the ratio on scheduler noise).  Both
    rows land in ``BENCH_history.jsonl`` and are guarded against silent
    regression by ``benchmarks/record_bench.py``.
    """
    import time

    from repro.baselines import GpuBaseline
    from repro.obs import NULL_RECORDER, TelemetryRecorder
    from repro.serve import AdmissionConfig, FullReplan, ServeConfig, serve_trace
    from repro.workloads import TraceConfig, iter_session_requests

    n = 1_000
    pool = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")
    horizon = n * 4.0
    trace = TraceConfig(horizon_s=horizon, arrival_rate_per_s=1 / 4,
                        mean_session_s=90.0, pool=pool)
    config = ServeConfig(
        horizon_s=horizon,
        admission=AdmissionConfig(capacity=4, queue_limit=8,
                                  max_queue_wait_s=120.0,
                                  preemption="evict_lowest_tier"),
        pool=pool, seed=0, record_timeline=False)
    cache = EvaluationCache(PLATFORM)
    policy = FullReplan(GpuBaseline())
    # Warm the solver cache so both rows time the event core + recorder,
    # not first-touch contention solves.
    serve_trace(iter_session_requests(np.random.default_rng(7),
                                      TraceConfig(horizon_s=400.0,
                                                  arrival_rate_per_s=1 / 4,
                                                  mean_session_s=90.0,
                                                  pool=pool),
                                      tier_shift_prob=0.2),
                policy, PLATFORM,
                ServeConfig(horizon_s=400.0, admission=config.admission,
                            pool=pool, seed=0, record_timeline=False),
                cache=cache)

    recorder = (TelemetryRecorder(where="bench") if mode == "on"
                else NULL_RECORDER)

    def run():
        stream = iter_session_requests(np.random.default_rng(7), trace,
                                       tier_shift_prob=0.2)
        t0 = time.perf_counter()
        report = serve_trace(stream, policy, PLATFORM, config, cache=cache,
                             recorder=recorder)
        _OBS_WALL[mode] = time.perf_counter() - t0
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    _OBS_REPORTS[mode] = report
    assert 0.9 * n <= report.arrivals <= 1.1 * n
    if mode == "on":
        snap = recorder.snapshot()
        assert snap.counter_total("serve.admission.verdict") \
            == report.arrivals
        assert len(snap.segments) > 0
        if "off" in _OBS_REPORTS:
            assert report == _OBS_REPORTS["off"], \
                "recorder changed the report — the side channel leaked"
        if "off" in _OBS_WALL:
            assert _OBS_WALL["on"] <= 1.10 * _OBS_WALL["off"] + 0.02, \
                (f"recorder overhead {_OBS_WALL['on'] / _OBS_WALL['off'] - 1:.0%} "
                 "exceeds the 10% budget")


@pytest.mark.parametrize("mode", ["ingest", "epoch"])
def test_bench_finetune(benchmark, mode, tmp_path):
    """Closed-loop fine-tuning hot paths: segment ingestion and one
    warm-start epoch.

    The ``ingest`` row times folding a 512-row served-segment stream
    (heavy on duplicates, as real traces are) through a bounded
    :class:`repro.estimator.FinetuneBuffer` — the per-sweep cost
    ``ExperimentContext.refresh_estimator`` pays before any gradient
    step.  The ``epoch`` row times one warm-start epoch of
    :func:`repro.estimator.finetune` over the deduplicated rows on a
    reduced estimator, bounding the refresh cadence the closed loop can
    sustain.  Both rows land in ``BENCH_history.jsonl`` and are guarded
    against silent regression by ``benchmarks/record_bench.py``.
    """
    from repro.estimator import (FinetuneBuffer, FinetuneConfig,
                                 finetune, load_estimator_artifact,
                                 save_estimator_artifact)
    from repro.vqvae import LayerVQVAE

    pool = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")
    rows = []
    for i in range(512):
        names = [pool[j] for j in range(len(pool)) if (i >> j) % 2] \
            or [pool[i % len(pool)]]
        names = names[:3]
        rows.append({
            "workload": names,
            "assignments": [[0] * get_model(n).num_blocks for n in names],
            "rates": [0.5 + (i % 4) * 0.5] * len(names),
            "duration_s": 1.0 + (i % 7),
        })

    if mode == "ingest":
        buf = benchmark(lambda: FinetuneBuffer(max_rows=128).ingest(rows))
        assert buf > 0
        return

    cfg = EstimatorConfig(max_dnns=4, stem_channels=8,
                          block_channels=(8, 12, 16), attn_dim=8,
                          decoder_dim=12)
    path = tmp_path / "estimator.pkl"
    save_estimator_artifact(path, ThroughputEstimator(
        np.random.default_rng(0), cfg), LayerVQVAE(
        np.random.default_rng(1)), PLATFORM)
    artifact = load_estimator_artifact(path, PLATFORM)
    buffer = FinetuneBuffer()
    buffer.ingest(rows)
    config = FinetuneConfig(epochs=1, batch_size=16, seed=0)

    report = benchmark.pedantic(
        lambda: finetune(artifact, buffer.rows(), config),
        rounds=2, iterations=1)
    assert report.rows == len(buffer)
    assert report.steps >= 1


@pytest.mark.parametrize("rounds", [0, 2], ids=["rounds0", "rounds2"])
def test_bench_fleet_feedback(benchmark, rounds):
    """Pressure-fed re-dispatch cost on the inline fleet.

    Serves the same 600 s demand through a 3-node fleet under the
    ``pressure_feedback`` roster policy with zero and two feedback
    rounds.  Round ``k`` re-routes the full demand with the node
    pressure measured from round ``k-1``, so the ``rounds2`` row pays
    three complete dispatch-then-serve cycles — the pair bounds what
    closing the routing loop costs over one-shot ``least_loaded``-style
    dispatch.  Replanning is pinned to the trivial GPU-only manager with
    pre-warmed per-node caches so the spread is dispatch + event-core
    work, not solver time.
    """
    from repro.baselines import GpuBaseline
    from repro.serve import AdmissionConfig, FullReplan, ServeConfig, serve_trace
    from repro.serve.fleet import FleetNode, NodeSpec, serve_fleet
    from repro.workloads import TraceConfig, sample_session_requests

    pool = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")
    horizon = 600.0
    requests = sample_session_requests(
        np.random.default_rng(0),
        TraceConfig(horizon_s=horizon, arrival_rate_per_s=1 / 4,
                    mean_session_s=90.0, pool=pool))
    nodes = []
    for i in range(3):
        cache = EvaluationCache(PLATFORM)
        config = ServeConfig(
            horizon_s=horizon,
            admission=AdmissionConfig(capacity=2, queue_limit=4,
                                      max_queue_wait_s=60.0),
            pool=pool, seed=i)
        policy = FullReplan(GpuBaseline())
        serve_trace(requests[:8], policy, PLATFORM, config, cache=cache)
        nodes.append(FleetNode(
            spec=NodeSpec(name=f"n{i}", capacity=2, speed=1.0 + 0.25 * i),
            platform=PLATFORM, policy=policy, config=config, cache=cache))

    report = benchmark(lambda: serve_fleet(
        requests, nodes, "pressure_feedback", horizon_s=horizon,
        feedback_rounds=rounds))
    assert report.routing == "pressure_feedback"
    assert report.arrivals == len(requests)
    assert report.admitted > 0


@pytest.mark.parametrize("cap", ["cap_off", "cap_on"])
def test_bench_fleet_energy(benchmark, cap):
    """Power-governor overhead on the pure dispatch hot path.

    Routes the same 1-hour aggregate trace across a 6-node heterogeneous
    fleet twice: power-blind (``cap_off``, today's baseline walk) and
    energy-budgeted (``cap_on``: per-node 3-state DVFS ladders, a 40 W
    fleet cap with a mid-trace brownout to 18 W, ``least_joules``
    routing).  The governed row pays per-event draw integration, DVFS
    renegotiation and departure events the blind walk never schedules —
    the pair bounds what the cap ledger costs on top of
    ``test_bench_fleet_dispatch``.
    """
    from repro.hw import dvfs_ladder, jetson_class_power, orange_pi_5_power
    from repro.serve.fleet import FleetPowerConfig, NodeSpec, plan_dispatch
    from repro.workloads import TraceConfig, sample_session_requests

    config = TraceConfig(horizon_s=3600.0, arrival_rate_per_s=1 / 4,
                         mean_session_s=90.0)
    requests = sample_session_requests(np.random.default_rng(0), config)
    nodes = [NodeSpec(name=f"n{i}", capacity=4, speed=1.0 + 0.5 * i,
                      fail_at_s=(1800.0 if i == 0 else None))
             for i in range(6)]
    power = None
    routing = "least_loaded"
    if cap == "cap_on":
        routing = "least_joules"
        power = FleetPowerConfig(
            ladders=tuple(
                dvfs_ladder(orange_pi_5_power() if i % 2 == 0
                            else jetson_class_power(), (1.0, 0.8, 0.65))
                for i in range(6)),
            cap_w=40.0, cap_shift=(1800.0, 18.0))

    plan = benchmark(lambda: plan_dispatch(requests, nodes, routing, 3600.0,
                                           power=power))
    assert sum(plan.routed) > 0
    assert (plan.power is None) == (cap == "cap_off")
