#!/usr/bin/env python
"""Measure the micro-benchmarks and append a dated entry to the history.

``make bench`` runs this: it invokes ``benchmarks/emit_bench_json.py``
(which refreshes ``BENCH_micro.json``) and then appends the distilled
record, stamped with the run date, as one JSON line to
``BENCH_history.jsonl``.  Committing the history file accumulates a
machine-readable perf trajectory across PRs — the batch-vs-scalar sweep
(``test_bench_simulator_solve_batch[*]``) and the serve replan-policy
comparison (``test_bench_serve_replan[*]``) are the rows to watch.

Usage:
    PYTHONPATH=src python benchmarks/record_bench.py [history.jsonl]
"""

from __future__ import annotations

import datetime
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> None:
    history_path = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else REPO_ROOT / "BENCH_history.jsonl"
    micro_path = REPO_ROOT / "BENCH_micro.json"
    subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / "emit_bench_json.py"),
         str(micro_path)],
        check=True, cwd=REPO_ROOT)
    record = json.loads(micro_path.read_text())
    entry = {
        "date": datetime.date.today().isoformat(),
        "meta": record.get("meta", {}),
        "benchmarks": record.get("benchmarks", {}),
    }
    with open(history_path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    count = sum(1 for _ in open(history_path))
    print(f"Appended {entry['date']} entry to {history_path} "
          f"({count} entries total)")


if __name__ == "__main__":
    main()
