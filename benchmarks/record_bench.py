#!/usr/bin/env python
"""Measure the micro-benchmarks and append a dated entry to the history.

``make bench`` runs this: it invokes ``benchmarks/emit_bench_json.py``
(which refreshes ``BENCH_micro.json``) and then appends the distilled
record, stamped with the run date and the checkout's short git SHA
(omitted outside a git checkout), as one JSON line to
``BENCH_history.jsonl``.  Committing the history file accumulates a
machine-readable perf trajectory across PRs — the batch-vs-scalar sweep
(``test_bench_simulator_solve_batch[*]``) and the serve replan-policy
comparison (``test_bench_serve_replan[*]``) are the rows to watch.

Before appending, the serve-path rows are compared against the previous
history entry: any ``test_bench_serve_replan[*]``,
``test_bench_serve_preempt[*]``, ``test_bench_serve_scale[*]`` or
``test_bench_estimator_predict[*]``
mean that got more than 25% slower is
flagged loudly (the hot serving path must not regress silently behind an
unrelated PR).  Flags are warnings, not
failures — machine noise is real — but they belong in the PR discussion.

Usage:
    PYTHONPATH=src python benchmarks/record_bench.py [history.jsonl]
"""

from __future__ import annotations

import datetime
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benchmark-name prefixes guarded against silent slowdowns.
GUARDED_PREFIXES = ("test_bench_serve_replan[", "test_bench_serve_preempt[",
                    "test_bench_serve_scale[", "test_bench_serve_obs[",
                    "test_bench_estimator_predict[",
                    "test_bench_finetune[", "test_bench_fleet_feedback[",
                    "test_bench_fleet_energy[",
                    "test_bench_simulator_solve_batch[")

#: Relative mean-time growth beyond which a guarded row is flagged.
REGRESSION_THRESHOLD = 0.25


def flag_regressions(previous: dict, current: dict,
                     prefixes: tuple[str, ...] = GUARDED_PREFIXES,
                     threshold: float = REGRESSION_THRESHOLD) -> list[str]:
    """Compare guarded benchmark rows of two history entries.

    ``previous`` and ``current`` are ``{name: {"mean_s": ...}}`` benchmark
    maps (the ``"benchmarks"`` value of a history entry).  Returns one
    human-readable flag line per guarded row whose mean grew more than
    ``threshold`` relative to the previous entry; rows absent from either
    side are skipped (a renamed or new benchmark has no baseline).
    """
    flags = []
    for name in sorted(current):
        if not any(name.startswith(prefix) for prefix in prefixes):
            continue
        old = previous.get(name)
        if not old:
            continue
        old_mean = old.get("mean_s", 0.0)
        new_mean = current[name].get("mean_s", 0.0)
        if old_mean <= 0.0:
            continue
        growth = new_mean / old_mean - 1.0
        if growth > threshold:
            flags.append(
                f"REGRESSION {name}: mean {old_mean:.3e} s -> "
                f"{new_mean:.3e} s (+{growth:.0%}, threshold "
                f"+{threshold:.0%})")
    return flags


def git_sha(repo_root: Path = REPO_ROOT) -> str | None:
    """Short commit SHA of ``repo_root``'s checkout, or ``None``.

    History entries stamped with the SHA tie each perf row to the exact
    tree that produced it — ``git log`` alone cannot, because the entry is
    committed one revision *after* the code it measured.  Returns ``None``
    (and stamps nothing) when the checkout is not a git repository, git is
    not installed, or the repo has no commits yet: a perf record from a
    tarball export is still a perf record.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def last_history_entry(history_path: Path) -> dict | None:
    """The most recent history entry, or ``None`` for a fresh file."""
    if not history_path.exists():
        return None
    last = None
    with open(history_path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                last = line
    return json.loads(last) if last else None


def main() -> None:
    history_path = Path(sys.argv[1]) if len(sys.argv) > 1 \
        else REPO_ROOT / "BENCH_history.jsonl"
    micro_path = REPO_ROOT / "BENCH_micro.json"
    subprocess.run(
        [sys.executable, str(REPO_ROOT / "benchmarks" / "emit_bench_json.py"),
         str(micro_path)],
        check=True, cwd=REPO_ROOT)
    record = json.loads(micro_path.read_text())
    entry = {
        "date": datetime.date.today().isoformat(),
        "meta": record.get("meta", {}),
        "benchmarks": record.get("benchmarks", {}),
    }
    sha = git_sha()
    if sha is not None:
        entry["git_sha"] = sha
    previous = last_history_entry(history_path)
    if previous is not None:
        flags = flag_regressions(previous.get("benchmarks", {}),
                                 entry["benchmarks"])
        for flag in flags:
            print(flag)
        if flags:
            print(f"{len(flags)} guarded benchmark(s) regressed vs the "
                  f"{previous.get('date', '?')} entry — investigate before "
                  "committing this history entry.")
    with open(history_path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    count = sum(1 for _ in open(history_path))
    print(f"Appended {entry['date']} entry to {history_path} "
          f"({count} entries total)")


if __name__ == "__main__":
    main()
