"""Benchmarks that regenerate every paper table/figure (DESIGN.md index).

Each bench runs its experiment once (``pedantic`` with a single round — the
experiments are full studies, not microkernels) and reports the runtime.
The regenerated rows are attached to the benchmark's ``extra_info`` so the
JSON output carries the actual reproduction data.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, run_experiment


def _run(benchmark, ctx, name: str) -> None:
    result = benchmark.pedantic(
        lambda: run_experiment(name, ctx), rounds=1, iterations=1,
    )
    benchmark.extra_info["experiment"] = name
    benchmark.extra_info["rows"] = [
        [str(c) for c in row] for row in result.rows[:40]
    ]


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_bench_experiment(benchmark, ctx, name):
    _run(benchmark, ctx, name)
