"""Shared fixtures for the benchmark suite.

The experiment benches share one :class:`ExperimentContext` per session so
the VQ-VAE/estimator train once.  The preset is selected with the
``REPRO_BENCH_PRESET`` environment variable (default ``tiny`` so the suite
completes in minutes; use ``fast`` to regenerate the EXPERIMENTS.md
numbers, ``paper`` for the full-size configuration).

Every test in this directory carries the ``bench`` marker, and the
repo-level ``--benchmark-disable`` default (pytest.ini) turns a plain
tier-1 run into a smoke pass: each benchmark body executes once, untimed.
Select/deselect with ``-m bench`` / ``-m "not bench"``; measure for real
with ``--benchmark-enable`` (see ``emit_bench_json.py``).
"""

import os

import pytest

from repro.experiments import ExperimentContext


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    for item in items:
        if str(item.path).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def ctx(tmp_path_factory):
    preset = os.environ.get("REPRO_BENCH_PRESET", "tiny")
    results = tmp_path_factory.mktemp("bench_results")
    return ExperimentContext(preset=preset, results_dir=results,
                             use_artifact_cache=False)
