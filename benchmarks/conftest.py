"""Shared fixtures for the benchmark suite.

The experiment benches share one :class:`ExperimentContext` per session so
the VQ-VAE/estimator train once.  The preset is selected with the
``REPRO_BENCH_PRESET`` environment variable (default ``tiny`` so the suite
completes in minutes; use ``fast`` to regenerate the EXPERIMENTS.md
numbers, ``paper`` for the full-size configuration).
"""

import os

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(scope="session")
def ctx(tmp_path_factory):
    preset = os.environ.get("REPRO_BENCH_PRESET", "tiny")
    results = tmp_path_factory.mktemp("bench_results")
    return ExperimentContext(preset=preset, results_dir=results,
                             use_artifact_cache=False)
