"""Ablation benches for the design choices DESIGN.md calls out.

* MCTS vs random search at equal evaluation budget (what the tree buys).
* Rollout persistence on/off (coherent vs iid completions).
* Starvation-threshold on/off (the cost of the no-starvation guarantee).
* VQ-VAE embeddings vs raw 22-dim features as estimator input width proxy.
* Power-penalty weight sweep (throughput cost of the power extension).
* DES buffer depth (how much pipeline buffering the throughput needs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.search import (
    MCTS,
    MCTSConfig,
    RewardConfig,
    mapping_reward,
    random_search,
    thresholds_for,
)
from repro.sim import simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()
WORKLOAD = [get_model(n)
            for n in ("squeezenet_v2", "inception_v4", "resnet50", "vgg16")]
BUDGET = 120  # mapping evaluations per search


def _oracle_reward_evaluator():
    oracle = OraclePredictor(PLATFORM)
    cfg = RewardConfig(kind="floor")
    p = np.full(len(WORKLOAD), 0.25)
    thresholds = thresholds_for(WORKLOAD, PLATFORM, cfg, p)

    def evaluate(mappings):
        rates = oracle.predict(WORKLOAD, mappings)
        return np.array([
            mapping_reward(r, p, thresholds, kind="floor") for r in rates
        ])

    return evaluate


def test_bench_ablation_mcts_vs_random(benchmark):
    evaluate = _oracle_reward_evaluator()

    def run_both():
        mcts = MCTS(WORKLOAD, 3, evaluate,
                    MCTSConfig(iterations=BUDGET // 4, rollouts_per_leaf=4,
                               seed=1))
        _, stats = mcts.search()
        _, rnd_best = random_search(WORKLOAD, 3, evaluate, BUDGET,
                                    np.random.default_rng(1))
        return stats.best_reward, rnd_best

    mcts_best, random_best = benchmark.pedantic(run_both, rounds=1,
                                                iterations=1)
    benchmark.extra_info["mcts_best_reward"] = float(mcts_best)
    benchmark.extra_info["random_best_reward"] = float(random_best)


@pytest.mark.parametrize("persistence", [0.0, 0.85])
def test_bench_ablation_rollout_persistence(benchmark, persistence):
    evaluate = _oracle_reward_evaluator()

    def run():
        mcts = MCTS(WORKLOAD, 3, evaluate,
                    MCTSConfig(iterations=BUDGET // 4, rollouts_per_leaf=4,
                               rollout_persistence=persistence, seed=2))
        return mcts.search()[1].best_reward

    best = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["persistence"] = persistence
    benchmark.extra_info["best_reward"] = float(best)


@pytest.mark.parametrize("guarded", [True, False])
def test_bench_ablation_threshold_guard(benchmark, guarded):
    """The no-starvation guard costs some T; quantify both sides."""
    reward = (RewardConfig(kind="floor")
              if guarded else RewardConfig(kind="floor", threshold=0.0,
                                           priority_gain=0.0))
    manager = RankMap(
        PLATFORM, OraclePredictor(PLATFORM),
        RankMapConfig(mode="dynamic", reward=reward,
                      mcts=MCTSConfig(iterations=BUDGET // 4,
                                      rollouts_per_leaf=4, seed=3)),
    )

    def run():
        decision = manager.plan(WORKLOAD)
        return simulate(WORKLOAD, decision.mapping, PLATFORM)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["guarded"] = guarded
    benchmark.extra_info["avg_T"] = float(result.average_throughput)
    benchmark.extra_info["min_P"] = float(result.potentials.min())


def test_bench_ablation_embedding_compression(benchmark):
    """VQ-VAE 16-dim embeddings vs raw 22-dim layer vectors: the paper
    credits the compression with ~58 % fewer estimator MACs; here the
    input width drops 22->16 (27 %) and the Q tensor shrinks to match."""
    from repro.vqvae import EMBEDDING_DIM, LayerVQVAE
    from repro.zoo.vectorize import LAYER_VECTOR_DIM, vectorize_model

    vqvae = LayerVQVAE(np.random.default_rng(0))
    model = get_model("inception_v4")

    def embed():
        return vqvae.embed_model(model)

    emb = benchmark(embed)
    benchmark.extra_info["raw_dim"] = LAYER_VECTOR_DIM
    benchmark.extra_info["embed_dim"] = EMBEDDING_DIM
    benchmark.extra_info["width_reduction"] = (
        1.0 - EMBEDDING_DIM / LAYER_VECTOR_DIM)
    assert emb.shape[1] == EMBEDDING_DIM


@pytest.mark.parametrize("objective", ["floor", "weighted_raw",
                                       "weighted_potentials"])
def test_bench_ablation_reward_objective(benchmark, objective):
    """The throughput-vs-priority-correlation spectrum (EXPERIMENTS.md):
    floor maximises T, weighted potentials maximises P-p correlation,
    the paper's weighted raw rates (the shipped default) sits between."""
    from repro.core.priorities import dynamic_priorities
    from repro.metrics import pearson_r

    reward = {
        "floor": RewardConfig(kind="floor"),
        "weighted_raw": RewardConfig(kind="weighted",
                                     normalize_by_ideal=False),
        "weighted_potentials": RewardConfig(kind="weighted",
                                            normalize_by_ideal=True),
    }[objective]
    manager = RankMap(
        PLATFORM, OraclePredictor(PLATFORM),
        RankMapConfig(mode="dynamic", reward=reward,
                      mcts=MCTSConfig(iterations=BUDGET // 4,
                                      rollouts_per_leaf=4, seed=7)),
    )

    def run():
        decision = manager.plan(WORKLOAD)
        return simulate(WORKLOAD, decision.mapping, PLATFORM)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["objective"] = objective
    benchmark.extra_info["avg_T"] = float(result.average_throughput)
    benchmark.extra_info["p_p_correlation"] = float(
        pearson_r(result.potentials, dynamic_priorities(WORKLOAD)))
    benchmark.extra_info["min_P"] = float(result.potentials.min())


@pytest.mark.parametrize("power_weight", [0.0, 4.0])
def test_bench_ablation_power_weight(benchmark, power_weight):
    """Power-aware planning: throughput and watts at two penalty weights."""
    from repro.core import PowerAwareRankMap
    from repro.hw import energy_report, orange_pi_5_power

    power = orange_pi_5_power()
    manager = PowerAwareRankMap(
        PLATFORM, OraclePredictor(PLATFORM), power,
        RankMapConfig(mode="dynamic",
                      mcts=MCTSConfig(iterations=BUDGET // 4,
                                      rollouts_per_leaf=4, seed=5)),
        objective="penalty", power_weight=power_weight,
    )

    def run():
        decision = manager.plan(WORKLOAD)
        return energy_report(WORKLOAD, decision.mapping, PLATFORM, power)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["power_weight"] = power_weight
    benchmark.extra_info["board_watts"] = float(report.system_watts)
    benchmark.extra_info["total_T"] = float(report.total_throughput)
    benchmark.extra_info["inf_per_joule"] = float(
        report.inferences_per_joule)


@pytest.mark.parametrize("buffer_depth", [1, 2, 4])
def test_bench_ablation_des_buffer_depth(benchmark, buffer_depth):
    """Inter-stage buffering: throughput delivered per buffer depth."""
    from repro.mapping import random_partition_mapping
    from repro.sim import DesConfig, simulate_des

    rng = np.random.default_rng(17)
    mapping = random_partition_mapping(WORKLOAD, 3, rng)
    config = DesConfig(horizon_s=15.0, warmup_s=3.0,
                       buffer_depth=buffer_depth)

    result = benchmark.pedantic(
        lambda: simulate_des(WORKLOAD, mapping, PLATFORM, config),
        rounds=1, iterations=1)
    benchmark.extra_info["buffer_depth"] = buffer_depth
    benchmark.extra_info["avg_T"] = float(result.average_throughput)
